"""The virtual-session engine: millions of logical users, O(tenants)
simulation processes.

A naive open-loop driver would spawn one simulated process per user —
hopeless at web scale.  Instead each *tenant class* (a population of
logical users sharing an arrival process, a key-skew profile, and a
transaction mix) is driven by a single generator process: every tick it
draws the Poisson arrival count for the whole population, stamps each
cohort with an arrival time inside the tick, and offers it to the
admission controller.  Cohorts batch ``batch`` logical requests into
one executed transaction, so a million logical requests cost thousands
— not millions — of simulated transactions while the queueing dynamics
(arrival bursts, backlog, shedding) stay per-request accurate.

Key skew is per tenant: each tenant picks warehouses through its own
Zipf distribution with its own hot spot, so multi-tenant load lands
unevenly across the partitioned tables — the skew the rebalancer and
the autoscaler have to chase.
"""

from __future__ import annotations

import bisect
import dataclasses
import random
import typing

from repro.metrics.series import LatencyHistogram, TimeSeries
from repro.traffic.admission import (
    AdmissionController,
    Request,
    TokenBucket,
)
from repro.traffic.arrivals import ArrivalProcess, sample_poisson
from repro.workload.client import RETRYABLE, backoff_delay
from repro.workload.tpcc_txns import DEFAULT_MIX, TRANSACTIONS, TpccContext

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.workload.tpcc_schema import TpccConfig

#: Transaction kinds the engine declares read-only at ``begin`` — the
#: read tier may then serve them from replicas, the cache, or the
#: materialized views, and the SLO report splits their latencies from
#: the writers'.
READ_ONLY_KINDS = frozenset({
    "order_status", "stock_level", "order_status_view", "stock_level_view",
})


class ZipfKeyChooser:
    """Seeded Zipf(theta) ranks over ``n`` items via the cumulative
    table (exact, O(log n) per draw; ``n`` here is warehouses, not
    rows, so the table stays tiny)."""

    def __init__(self, n: int, theta: float, rng: random.Random):
        if n < 1:
            raise ValueError("need at least one item")
        if theta < 0:
            raise ValueError("theta cannot be negative")
        self.n = n
        self.theta = theta
        self.rng = rng
        weights = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def rank(self) -> int:
        """A 0-based rank, 0 being the hottest."""
        return bisect.bisect_left(self._cumulative, self.rng.random())


@dataclasses.dataclass(frozen=True)
class TenantClass:
    """A population of logical users behaving alike."""

    name: str
    #: Logical population size — bookkeeping for the report; the load
    #: itself comes from ``arrivals`` (users x per-user request rate).
    users: int
    arrivals: ArrivalProcess
    #: Zipf skew over warehouses (0 = uniform); ``hot_offset`` rotates
    #: which warehouse is this tenant's hottest so tenants collide only
    #: partially.
    zipf_theta: float = 0.9
    hot_offset: int = 0
    mix: tuple[tuple[str, float], ...] = tuple(DEFAULT_MIX)
    #: Latency target the report judges p99 against (None = no SLO).
    slo_p99_ms: float | None = None
    #: Admission contract: token-bucket rate in logical requests/sec
    #: (None = no per-tenant rate limit) and burst allowance.
    rate_limit: float | None = None
    burst: float | None = None

    def __post_init__(self):
        if self.users < 1:
            raise ValueError("a tenant class needs at least one user")


class TenantTpccContext(TpccContext):
    """A tenant-private TPC-C context: its own rng stream and its own
    Zipf-skewed warehouse choice."""

    def __init__(self, cluster: "Cluster", config: "TpccConfig", cc: str,
                 rng: random.Random, zipf: ZipfKeyChooser, hot_offset: int):
        super().__init__(cluster=cluster, config=config, cc=cc, rng=rng)
        self._zipf = zipf
        self._hot_offset = hot_offset

    def random_warehouse(self) -> int:
        rank = self._zipf.rank()
        return (rank + self._hot_offset) % self.config.warehouses + 1


@dataclasses.dataclass
class TenantRuntime:
    """Mutable per-tenant state owned by the engine."""

    tenant: TenantClass
    ctx: TenantTpccContext
    arrival_rng: random.Random
    latency: LatencyHistogram
    #: The same observations split by transaction class, so the SLO
    #: report can show read and write percentiles separately.
    read_latency: LatencyHistogram | None = None
    write_latency: LatencyHistogram | None = None
    dispatched_cohorts: int = 0
    executed: int = 0          # executed transactions (cohorts)
    conflicts: int = 0         # aborted attempts across all cohorts

    def pick_kind(self) -> str:
        roll = self.ctx.rng.random()
        acc = 0.0
        for name, weight in self.tenant.mix:
            acc += weight
            if roll < acc:
                return name
        return self.tenant.mix[-1][0]


class SessionEngine:
    """Open-loop driver: one arrival process per tenant class, a fixed
    executor pool draining the admission queue against the cluster."""

    def __init__(self, cluster: "Cluster", tpcc_config: "TpccConfig",
                 tenants: typing.Sequence[TenantClass],
                 admission: AdmissionController | None = None,
                 seed: int = 0, tick: float = 1.0, batch: int = 100,
                 executors: int = 8, queue_limit: int = 50_000,
                 max_retries: int = 8, retry_budget: float = 15.0,
                 cc: str = "mvcc"):
        if not tenants:
            raise ValueError("need at least one tenant class")
        if tick <= 0 or batch < 1 or executors < 1:
            raise ValueError("tick, batch, and executors must be positive")
        self.cluster = cluster
        self.tick = tick
        self.batch = batch
        self.executors = executors
        self.max_retries = max_retries
        self.retry_budget = retry_budget
        self.admission = admission or AdmissionController(
            cluster.env, queue_limit=queue_limit,
            buckets={
                t.name: TokenBucket(t.rate_limit,
                                    t.burst or 2.0 * t.rate_limit)
                for t in tenants if t.rate_limit is not None
            },
        )
        self.runtimes: dict[str, TenantRuntime] = {}
        for index, tenant in enumerate(tenants):
            zipf_rng = random.Random(seed * 1_000_003 + index * 7919 + 5)
            runtime = TenantRuntime(
                tenant=tenant,
                ctx=TenantTpccContext(
                    cluster, tpcc_config, cc,
                    rng=random.Random(seed * 999_983 + index * 104_729 + 1),
                    zipf=ZipfKeyChooser(tpcc_config.warehouses,
                                        tenant.zipf_theta, zipf_rng),
                    hot_offset=tenant.hot_offset,
                ),
                arrival_rng=random.Random(seed * 15_485_863 + index * 31 + 9),
                latency=LatencyHistogram(name=tenant.name),
                read_latency=LatencyHistogram(name=f"{tenant.name}.read"),
                write_latency=LatencyHistogram(name=f"{tenant.name}.write"),
            )
            self.runtimes[tenant.name] = runtime
        self._in_flight = 0
        self.results_by_kind: dict[str, int] = {}
        #: One point per executed cohort: (completion time, logical
        #: request count) — ``bucket_sum`` turns it into requests/sec.
        self.completions = TimeSeries("completed_requests")

    # -- producer --------------------------------------------------------

    def _tenant_loop(self, runtime: TenantRuntime, until: float):
        """One tick per ``tick`` seconds: draw the tenant's Poisson
        arrival count, dispatch timestamped cohorts open-loop."""
        env = self.cluster.env
        tenant = runtime.tenant
        rng = runtime.arrival_rng
        while env.now < until:
            tick_start = env.now
            lam = tenant.arrivals.rate(tick_start) * self.tick
            n = sample_poisson(rng, lam)
            remaining = n
            offsets = []
            while remaining > 0:
                size = min(self.batch, remaining)
                remaining -= size
                offsets.append((rng.random() * self.tick, size))
            offsets.sort()
            for offset, size in offsets:
                at = tick_start + offset
                if at > env.now:
                    yield env.timeout(at - env.now)
                runtime.dispatched_cohorts += 1
                self.admission.offer(
                    Request(tenant=tenant.name, arrival=env.now, count=size)
                )
            next_tick = tick_start + self.tick
            if next_tick > env.now:
                yield env.timeout(next_tick - env.now)

    # -- consumer --------------------------------------------------------

    def _execute(self, request: Request, runtime: TenantRuntime):
        """Run one cohort as one transaction, bounded retries inside a
        total-retry-time budget; latency is arrival -> completion, i.e.
        it *includes* the admission-queue wait."""
        env = self.cluster.env
        cluster = self.cluster
        ctx = runtime.ctx
        kind = runtime.pick_kind()
        body = TRANSACTIONS[kind]
        read_only = kind in READ_ONLY_KINDS
        started = env.now
        for attempt in range(self.max_retries):
            if attempt and env.now - started > self.retry_budget:
                self.admission.note_abandoned(request)
                return
            txn = cluster.txns.begin(read_only=read_only)
            # Tag the transaction with its tenant so the read tier's
            # cache can account fills against per-tenant quotas.
            txn.tenant = runtime.tenant.name
            try:
                yield from cluster.network.rpc_delay()  # edge -> master
                yield from cluster.master.plan()
                result = yield from body(ctx, txn, None)
                yield from cluster.txns.commit(
                    txn, immediate_gc=(ctx.cc == "locking")
                )
            except RETRYABLE:
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
                runtime.conflicts += 1
                yield env.timeout(backoff_delay(attempt))
                continue
            del result
            runtime.executed += 1
            latency_ms = max((env.now - request.arrival) * 1000.0, 0.0)
            runtime.latency.record(latency_ms, count=request.count)
            split = (runtime.read_latency if read_only
                     else runtime.write_latency)
            if split is not None:
                split.record(latency_ms, count=request.count)
            self.completions.record(env.now, request.count)
            self.results_by_kind[kind] = (
                self.results_by_kind.get(kind, 0) + 1
            )
            self.admission.note_completed(request)
            history = cluster.txns.history
            if history is not None:
                history.record_ack(txn.txn_id, kind, request.arrival,
                                   env.now, attempts=attempt + 1)
            return
        self.admission.note_abandoned(request)

    def _executor_loop(self):
        while True:
            request = yield from self.admission.take()
            if request is None:
                return
            runtime = self.runtimes[request.tenant]
            self._in_flight += 1
            try:
                yield from self._execute(request, runtime)
            finally:
                self._in_flight -= 1

    # -- run -------------------------------------------------------------

    def run(self, duration: float):
        """Generator: drive the open-loop workload for ``duration``
        simulated seconds, then drain the backlog and stop the pool."""
        env = self.cluster.env
        until = env.now + duration
        producers = [
            env.process(self._tenant_loop(runtime, until),
                        name=f"tenant-{name}")
            for name, runtime in self.runtimes.items()
        ]
        pool = [
            env.process(self._executor_loop(), name=f"executor-{i}")
            for i in range(self.executors)
        ]
        for producer in producers:
            yield producer
        while self.admission.queue_depth > 0 or self._in_flight > 0:
            yield env.timeout(1.0)
        self.admission.close()
        for executor in pool:
            yield executor

    # -- aggregates ------------------------------------------------------

    @property
    def offered_total(self) -> int:
        return self.admission.offered

    @property
    def completed_total(self) -> int:
        return self.admission.completed

    def tenant_report(self) -> dict[str, dict[str, float | int]]:
        """Per-tenant rows for :func:`repro.metrics.report
        .render_slo_table`: latency summary + admission accounting."""
        out: dict[str, dict[str, float | int]] = {}
        for name, runtime in self.runtimes.items():
            row: dict[str, float | int] = dict(runtime.latency.summary())
            for prefix, split in (("read", runtime.read_latency),
                                  ("write", runtime.write_latency)):
                if split is None:
                    continue
                summary = split.summary()
                row[f"{prefix}_requests"] = summary["count"]
                for stat in ("mean", "p50", "p99", "p999"):
                    row[f"{prefix}_{stat}"] = summary[stat]
            row.update(self.admission.counters_for(name).as_dict())
            if runtime.tenant.slo_p99_ms is not None:
                row["slo_p99_ms"] = runtime.tenant.slo_p99_ms
            row["users"] = runtime.tenant.users
            row["executed_txns"] = runtime.executed
            row["conflicts"] = runtime.conflicts
            out[name] = row
        return out
