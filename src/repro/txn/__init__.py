"""Transaction substrate: timestamps, MVCC, MGL-RX locking, WAL.

The paper (Sect. 3.5) compares classical Multi-Granularity Locking with
RX modes against Multiversion Concurrency Control while records move
between partitions, and adopts MVCC; system transactions protect record
movement.  Both mechanisms are implemented here and selectable per
experiment, which is what regenerates Fig. 3.
"""

from repro.txn.ids import TimestampOracle
from repro.txn.locks import (
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.txn.manager import (
    Transaction,
    TransactionAborted,
    TransactionManager,
    TxnState,
    WriteConflictError,
)
from repro.txn import mvcc, recovery
from repro.txn.wal import LogManager, LogRecord, LogShippingSink

__all__ = [
    "LockManager",
    "LockMode",
    "LockTimeoutError",
    "LogManager",
    "LogRecord",
    "LogShippingSink",
    "TimestampOracle",
    "Transaction",
    "TransactionAborted",
    "TransactionManager",
    "TxnState",
    "WriteConflictError",
    "mvcc",
    "recovery",
]
