"""Fuzzy checkpoints and the WAL recycling horizon.

The paper's durability story leans on partition moves acting as
checkpoints (Sect. 4.3), which is enough for short bursts but not for
the endurance regime its energy results are measured in: without
periodic checkpoints the WAL grows without bound and recovery replays
from the beginning of time.  This module adds ARIES-flavoured *fuzzy*
checkpoints — taken without quiescing transactions — and the horizon
arithmetic that lets :meth:`repro.txn.wal.LogManager.truncate_before`
recycle sealed log segments:

* a :class:`CheckpointRecord` (active-transaction table, dirty-extent
  table, partition-table epochs, and the ``redo_lsn`` REDO must start
  from) is appended to the WAL and forced like any other record;
* the *base image* — the committed rows at the instant of the
  checkpoint, well-defined under MVCC even mid-transaction — is made
  durable on the data disk (modelled as a sequential write of the
  dirtied bytes) and kept per worker, newest image only, so recovery
  can load it and replay just the bounded suffix;
* the recycling horizon of a node's WAL is
  ``min(checkpoint redo_lsn, replication acked horizon,
  oldest open move)``: nothing is dropped that an un-acked replica
  shipment or an open move-journal entry may still need.

``redo_lsn = min(first data LSN of any live transaction, the
checkpoint's own LSN)``: everything older is either committed (hence in
the base image) or aborted, so replaying the suffix over the image
reconstructs exactly the committed state.  Replay is idempotent —
:func:`repro.txn.recovery.redo` upserts — so records both in the image
and after ``redo_lsn`` are harmless to re-apply.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.disk import DiskFailedError
from repro.txn.wal import LOG_BLOCK_BYTES

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.catalog import Partition
    from repro.cluster.worker import WorkerNode
    from repro.ha.replication import ReplicationManager
    from repro.index.global_table import GlobalPartitionTable
    from repro.moves.journal import MoveJournal


@dataclasses.dataclass(frozen=True)
class CheckpointRecord:
    """Payload of a fuzzy checkpoint's WAL record.

    ``redo_lsn`` is where crash REDO must start; ``active_txns`` the
    transactions live at the instant of the checkpoint (their effects
    are NOT in the base image); ``dirty_extents`` the per-partition
    ``(partition_id, used_bytes)`` table standing in for ARIES's
    dirty-page table; ``gpt_epochs`` the ``(table, partition_id,
    epoch)`` fencing tokens of the partitions covered.
    """

    redo_lsn: int
    active_txns: tuple[int, ...] = ()
    dirty_extents: tuple[tuple[int, int], ...] = ()
    gpt_epochs: tuple[tuple[str, int, int], ...] = ()
    taken_at: float = 0.0


@dataclasses.dataclass
class CheckpointImage:
    """The durable base image one checkpoint captured for one
    partition: committed rows as of the checkpoint instant.  Only the
    newest image per partition is retained (bounded memory)."""

    checkpoint_lsn: int
    redo_lsn: int
    taken_at: float
    #: ``(key, values, nbytes)`` per committed row.
    rows: list[tuple]
    nbytes: int = 0


def iter_committed_rows(partition: "Partition"):
    """Yield ``(key, values, size_bytes)`` for the newest committed
    version of every live record — the base-image scan, shared with
    replica seeding (:mod:`repro.ha.replication`)."""
    for segment_id in sorted(partition.segments):
        segment = partition.segments[segment_id]
        for key, _chain in segment.index_scan():
            for _page_no, _slot, version in segment.versions_for(key):
                if version.created_ts is None or version.deleted_ts is not None:
                    continue
                yield key, tuple(version.values), version.size_bytes
                break


def take_worker_checkpoint(worker: "WorkerNode",
                           gpt: "GlobalPartitionTable | None" = None,
                           priority: int = 0):
    """Generator: one fuzzy checkpoint of ``worker`` — no quiescing.

    Captures the committed base image of every local partition (an
    MVCC snapshot, consistent even while transactions are mid-flight),
    appends the checkpoint record, charges the data-disk write for the
    dirtied bytes, and forces the WAL.  Returns ``(lsn, record)``.
    """
    log = worker.wal
    env = log.env
    oldest = log.oldest_active_redo_lsn()
    own_lsn = log._next_lsn + 1
    redo_lsn = own_lsn if oldest is None else min(oldest, own_lsn)
    dirty_bytes = log._appended_bytes - log.appended_at_last_checkpoint

    images: dict[int, CheckpointImage] = {}
    dirty_extents = []
    gpt_epochs = []
    image_bytes = 0
    for partition_id, partition in sorted(worker.partitions.items()):
        rows = []
        nbytes = 0
        for key, values, row_bytes in iter_committed_rows(partition):
            rows.append((key, values, row_bytes))
            nbytes += row_bytes
        images[partition_id] = CheckpointImage(
            checkpoint_lsn=own_lsn, redo_lsn=redo_lsn, taken_at=env.now,
            rows=rows, nbytes=nbytes,
        )
        image_bytes += nbytes
        dirty_extents.append((partition_id, partition.used_bytes))
        if gpt is not None:
            try:
                epoch = gpt.epoch_of(partition.table.name, partition_id)
            except KeyError:
                continue
            gpt_epochs.append((partition.table.name, partition_id, epoch))

    record = CheckpointRecord(
        redo_lsn=redo_lsn,
        active_txns=tuple(sorted(log._txn_first_lsn)),
        dirty_extents=tuple(dirty_extents),
        gpt_epochs=tuple(gpt_epochs),
        taken_at=env.now,
    )
    lsn = log.checkpoint(payload=record)
    worker.checkpoint_images = images

    # The background page writer: only bytes dirtied since the last
    # checkpoint hit the data disk, never the whole partition.
    write_bytes = max(LOG_BLOCK_BYTES, min(image_bytes, dirty_bytes))
    yield from worker.disk_space.disks[0].write(
        write_bytes, sequential=True, priority=priority
    )
    yield from log.flush(lsn, None, priority)
    return lsn, record


class CheckpointManager:
    """Periodic fuzzy checkpoints plus WAL segment recycling.

    One background process walks the active workers on a fixed cadence:
    checkpoint, compute the recycling horizon, truncate.  With a
    :class:`~repro.ha.replication.ReplicationManager` attached it also
    respects the per-replica acked-LSN watermark and compacts replica
    logs that have outgrown ``compact_replicas_over`` records, keeping
    promotion replay bounded.
    """

    def __init__(self, cluster: "Cluster",
                 replication: "ReplicationManager | None" = None,
                 interval: float = 60.0, until: float | None = None,
                 compact_replicas_over: int | None = 4096,
                 priority: int = 0):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.cluster = cluster
        self.env = cluster.env
        self.replication = replication
        self.interval = interval
        self.until = until
        self.compact_replicas_over = compact_replicas_over
        self.priority = priority
        self.process = None
        self._stop = False
        # -- accounting ----------------------------------------------------
        self.checkpoints_taken = 0
        self.records_recycled = 0
        self.image_bytes_written = 0
        self.replica_compactions = 0
        self.replica_records_dropped = 0
        self.checkpoint_failures = 0
        #: Worst-case REDO length implied by any checkpoint taken:
        #: records between its ``redo_lsn`` and the log tail.
        self.max_replay_window = 0
        self.peak_live_records = 0
        #: Live records beyond the horizon after recycling — the
        #: footprint bound the endurance gate asserts on (exact-LSN
        #: truncation keeps this at zero; a lazier whole-segment-only
        #: strategy may legitimately reach 2 segments).
        self.peak_footprint_slack = 0
        self.last_horizons: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CheckpointManager":
        self.process = self.env.process(self._run(), name="checkpoint-daemon")
        return self

    def stop(self) -> None:
        self._stop = True

    @property
    def stopped(self) -> bool:
        return self._stop

    def _run(self):
        env = self.env
        while not self._stop:
            target = env.now + self.interval
            if self.until is not None:
                target = min(target, self.until)
                if target <= env.now:
                    break
            yield env.timeout(target - env.now)
            if self._stop:
                break
            yield from self.checkpoint_all(self.priority)
            if self.until is not None and target >= self.until:
                break

    # -- one checkpoint round ----------------------------------------------

    def checkpoint_all(self, priority: int = 0):
        """Generator: checkpoint every serving worker and recycle its
        WAL up to the horizon; then compact oversized replica logs."""
        journal = getattr(getattr(self.cluster, "moves", None),
                          "journal", None)
        for worker in list(self.cluster.active_workers()):
            if not worker.is_serving:
                continue
            log = worker.wal
            # Worst-case REDO at any instant is the suffix behind the
            # *previous* checkpoint's redo point; it peaks right here,
            # just before the new checkpoint supersedes it.
            prev_redo = max(log.last_checkpoint_redo_lsn, 1)
            window = log._next_lsn - prev_redo + 1
            try:
                lsn, record = yield from take_worker_checkpoint(
                    worker, self.cluster.master.gpt, priority
                )
            except DiskFailedError:
                self.checkpoint_failures += 1
                continue
            self.checkpoints_taken += 1
            self.image_bytes_written += sum(
                image.nbytes for image in worker.checkpoint_images.values()
            )
            self.max_replay_window = max(self.max_replay_window, window)
            self.peak_live_records = max(self.peak_live_records,
                                         log.live_records)
            horizon = self.recycling_horizon(worker, record.redo_lsn,
                                             journal)
            self.records_recycled += log.truncate_before(horizon)
            slack = log.live_records - (log._next_lsn - horizon + 1)
            self.peak_footprint_slack = max(self.peak_footprint_slack, slack)
            self.last_horizons[worker.node_id] = horizon
        if (self.replication is not None
                and self.compact_replicas_over is not None):
            yield from self._compact_replicas(priority)

    def recycling_horizon(self, worker: "WorkerNode", redo_lsn: int,
                          journal: "MoveJournal | None" = None) -> int:
        """``min(checkpoint redo_lsn, replication acked horizon,
        oldest open move)`` for this worker's WAL.  Records below the
        returned LSN can never be needed again."""
        horizon = redo_lsn
        if self.replication is not None:
            pin = self.replication.acked_horizon(worker.node_id)
            if pin is not None:
                horizon = min(horizon, pin)
        if journal is not None and journal.wal is worker.wal:
            pin = journal.oldest_open_move_lsn()
            if pin is not None:
                horizon = min(horizon, pin)
        return horizon

    def _compact_replicas(self, priority: int = 0):
        catalog = self.cluster.catalog
        for replica_set in list(catalog.replica_sets.values()):
            for replica in list(replica_set.replicas):
                if replica.stale:
                    continue
                if replica.log.live_records <= self.compact_replicas_over:
                    continue
                before = replica.log.live_records
                compacted = yield from self.replication.compact_replica(
                    replica, replica_set.table, priority
                )
                if compacted:
                    self.replica_compactions += 1
                    self.replica_records_dropped += (
                        before - replica.log.live_records
                    )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_failures": self.checkpoint_failures,
            "records_recycled": self.records_recycled,
            "image_bytes_written": self.image_bytes_written,
            "max_replay_window": self.max_replay_window,
            "peak_live_records": self.peak_live_records,
            "peak_footprint_slack": self.peak_footprint_slack,
            "replica_compactions": self.replica_compactions,
            "replica_records_dropped": self.replica_records_dropped,
        }
