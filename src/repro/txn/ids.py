"""Transaction ids and logical timestamps.

A single oracle hands out both, giving a total order across the whole
cluster.  The master node hosts it in WattDB terms; the RPC cost of
obtaining a timestamp is charged by the caller, not here.
"""

from __future__ import annotations


class TimestampOracle:
    """Monotonic source of transaction ids and commit timestamps."""

    def __init__(self, start: int = 0):
        self._counter = start

    def next(self) -> int:
        self._counter += 1
        return self._counter

    @property
    def current(self) -> int:
        return self._counter
