"""Multi-granularity locking with RX modes (MGL-RX).

The paper's baseline concurrency control (Sect. 3.5): hierarchical
locks over table -> partition -> record with intention modes.  Waits
are real simulated-time queueing (FIFO, with upgrades served first);
deadlocks are broken by timeout, the policy WattDB's experiments make
viable because queries are short.
"""

from __future__ import annotations

import enum
import typing

from repro.metrics.breakdown import CostBreakdown
from repro.sim.engine import Environment
from repro.sim.events import AnyOf, Event


class LockMode(enum.IntEnum):
    """Lock modes ordered by strength (for upgrade arithmetic)."""

    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5


_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {}


def _fill_compatibility():
    table = {
        LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
        LockMode.IX: {LockMode.IS, LockMode.IX},
        LockMode.S: {LockMode.IS, LockMode.S},
        LockMode.SIX: {LockMode.IS},
        LockMode.X: set(),
    }
    for a, compatible in table.items():
        for b in LockMode:
            _COMPATIBLE[(a, b)] = b in compatible


_fill_compatibility()

#: Least upper bound of two held modes (classic lattice).
_SUPREMUM = {
    frozenset({LockMode.IS, LockMode.IX}): LockMode.IX,
    frozenset({LockMode.IS, LockMode.S}): LockMode.S,
    frozenset({LockMode.IS, LockMode.SIX}): LockMode.SIX,
    frozenset({LockMode.IS, LockMode.X}): LockMode.X,
    frozenset({LockMode.IX, LockMode.S}): LockMode.SIX,
    frozenset({LockMode.IX, LockMode.SIX}): LockMode.SIX,
    frozenset({LockMode.IX, LockMode.X}): LockMode.X,
    frozenset({LockMode.S, LockMode.SIX}): LockMode.SIX,
    frozenset({LockMode.S, LockMode.X}): LockMode.X,
    frozenset({LockMode.SIX, LockMode.X}): LockMode.X,
}


def compatible(a: LockMode, b: LockMode) -> bool:
    return _COMPATIBLE[(a, b)]


def supremum(a: LockMode, b: LockMode) -> LockMode:
    if a == b:
        return a
    return _SUPREMUM[frozenset({a, b})]


class LockTimeoutError(RuntimeError):
    """Lock wait exceeded the deadlock-breaking timeout."""


class _Waiter:
    __slots__ = ("txn_id", "mode", "event", "is_upgrade", "cancelled")

    def __init__(self, env: Environment, txn_id: int, mode: LockMode,
                 is_upgrade: bool):
        self.txn_id = txn_id
        self.mode = mode
        self.event: Event = env.event()
        self.is_upgrade = is_upgrade
        self.cancelled = False


class _LockState:
    __slots__ = ("granted", "queue")

    def __init__(self):
        self.granted: dict[int, LockMode] = {}
        self.queue: list[_Waiter] = []


ResourceId = typing.Hashable


class LockManager:
    """FIFO multi-granularity lock table with upgrade priority."""

    def __init__(self, env: Environment, default_timeout: float = 10.0):
        self.env = env
        self.default_timeout = default_timeout
        self._locks: dict[ResourceId, _LockState] = {}
        #: txn_id -> set of resources it holds locks on.
        self._held: dict[int, set[ResourceId]] = {}
        self.timeout_count = 0
        self.wait_count = 0

    # -- introspection -----------------------------------------------------

    def holders(self, resource: ResourceId) -> dict[int, LockMode]:
        state = self._locks.get(resource)
        return dict(state.granted) if state else {}

    def mode_held(self, txn_id: int, resource: ResourceId) -> LockMode | None:
        state = self._locks.get(resource)
        return state.granted.get(txn_id) if state else None

    def queue_length(self, resource: ResourceId) -> int:
        state = self._locks.get(resource)
        return len(state.queue) if state else 0

    # -- acquire / release -------------------------------------------------

    def _grantable(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        return all(
            compatible(held, mode)
            for holder, held in state.granted.items()
            if holder != txn_id
        )

    def _clears_queue(self, state: _LockState, mode: LockMode,
                      upto: _Waiter | None = None) -> bool:
        """Whether ``mode`` is compatible with every live waiter queued
        (ahead of ``upto``) — the fairness rule that keeps a queued X
        from being starved by a stream of later compatible requests,
        while still letting e.g. IS slip past a queued S."""
        for waiter in state.queue:
            if waiter is upto:
                return True
            if not waiter.cancelled and not compatible(waiter.mode, mode):
                return False
        return True

    def acquire(self, txn_id: int, resource: ResourceId, mode: LockMode,
                breakdown: CostBreakdown | None = None,
                timeout: float | None = None):
        """Generator: obtain (or upgrade to) ``mode`` on ``resource``.

        Raises :class:`LockTimeoutError` after the deadlock timeout; the
        caller is expected to abort the transaction and release.
        """
        state = self._locks.setdefault(resource, _LockState())
        held = state.granted.get(txn_id)
        want = mode if held is None else supremum(held, mode)
        if held is not None and want == held:
            return  # already strong enough
        # Upgraders bypass the queue check: they already hold the lock,
        # so queueing behind waiters they block would deadlock.
        queue_ok = held is not None or self._clears_queue(state, want)
        if queue_ok and self._grantable(state, txn_id, want):
            self._grant(state, txn_id, want, resource)
            return

        waiter = _Waiter(self.env, txn_id, want, is_upgrade=held is not None)
        if waiter.is_upgrade:
            # Upgrades go to the front: the holder blocks others anyway.
            state.queue.insert(0, waiter)
        else:
            state.queue.append(waiter)
        self.wait_count += 1

        t0 = self.env.now
        limit = self.default_timeout if timeout is None else timeout
        timer = self.env.timeout(limit)
        yield AnyOf(self.env, [waiter.event, timer])
        if breakdown is not None:
            breakdown.add("locking", self.env.now - t0)
        if not waiter.event.processed and not waiter.event.triggered:
            waiter.cancelled = True
            state.queue.remove(waiter)
            self.timeout_count += 1
            raise LockTimeoutError(
                f"txn {txn_id} timed out waiting for {want.name} on {resource!r}"
            )

    def _grant(self, state: _LockState, txn_id: int, mode: LockMode,
               resource: ResourceId) -> None:
        state.granted[txn_id] = mode
        self._held.setdefault(txn_id, set()).add(resource)

    def release(self, txn_id: int, resource: ResourceId) -> None:
        state = self._locks.get(resource)
        if state is None or txn_id not in state.granted:
            raise KeyError(f"txn {txn_id} holds no lock on {resource!r}")
        del state.granted[txn_id]
        held = self._held.get(txn_id)
        if held is not None:
            held.discard(resource)
        self._wake(state, resource)
        if not state.granted and not state.queue:
            del self._locks[resource]

    def release_all(self, txn_id: int) -> None:
        """Drop every lock a transaction holds (commit/abort path)."""
        for resource in list(self._held.get(txn_id, ())):
            self.release(txn_id, resource)
        self._held.pop(txn_id, None)

    def _wake(self, state: _LockState, resource: ResourceId) -> None:
        """Grant queued requests in FIFO order; a waiter may overtake
        earlier ones only if its mode is compatible with theirs."""
        progress = True
        while progress:
            progress = False
            state.queue = [w for w in state.queue if not w.cancelled]
            for waiter in list(state.queue):
                if not self._grantable(state, waiter.txn_id, waiter.mode):
                    continue
                if not self._clears_queue(state, waiter.mode, upto=waiter):
                    continue
                state.queue.remove(waiter)
                self._grant(state, waiter.txn_id, waiter.mode, resource)
                waiter.event.succeed()
                progress = True
                break

    # -- hierarchical convenience -------------------------------------------

    def lock_record(self, txn_id: int, table: str, partition_id: int,
                    key: typing.Any, mode: LockMode,
                    breakdown: CostBreakdown | None = None,
                    timeout: float | None = None):
        """Generator: classic MGL path — intention locks down the
        hierarchy, then R/X on the record."""
        if mode not in (LockMode.S, LockMode.X):
            raise ValueError(f"record locks must be S or X, got {mode.name}")
        intent = LockMode.IS if mode is LockMode.S else LockMode.IX
        yield from self.acquire(txn_id, ("table", table), intent, breakdown, timeout)
        yield from self.acquire(
            txn_id, ("partition", partition_id), intent, breakdown, timeout
        )
        yield from self.acquire(
            txn_id, ("record", partition_id, key), mode, breakdown, timeout
        )

    def lock_partition(self, txn_id: int, table: str, partition_id: int,
                       mode: LockMode,
                       breakdown: CostBreakdown | None = None,
                       timeout: float | None = None):
        """Generator: partition-granule lock (used by migration)."""
        intent = LockMode.IS if mode is LockMode.S else LockMode.IX
        yield from self.acquire(txn_id, ("table", table), intent, breakdown, timeout)
        yield from self.acquire(
            txn_id, ("partition", partition_id), mode, breakdown, timeout
        )
