"""Transaction lifecycle: begin, commit, abort; system transactions.

Commit stamps MVCC timestamps into every version the transaction wrote,
forces the WAL of every node it touched, and releases its locks.  Abort
undoes in-memory changes (new versions removed, delete marks cleared).

"So-called system transactions are provided to guarantee serializability
of record movement" (Sect. 3.5) — they are ordinary transactions with
the ``is_system`` flag, used by the migration engine.
"""

from __future__ import annotations

import enum
import typing

from repro.metrics.breakdown import CostBreakdown
from repro.sim.engine import Environment
from repro.storage.record import RecordVersion
from repro.storage.segment import Segment
from repro.txn.ids import TimestampOracle
from repro.txn.locks import LockManager
from repro.txn.wal import LogManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionAborted(RuntimeError):
    """The transaction cannot continue and must be rolled back."""


class WriteConflictError(TransactionAborted):
    """Snapshot-isolation first-updater-wins conflict."""


class Transaction:
    """One unit of work under either MVCC or MGL-RX."""

    def __init__(self, txn_id: int, begin_ts: int, is_system: bool = False,
                 read_only: bool = False):
        self.txn_id = txn_id
        self.begin_ts = begin_ts
        self.is_system = is_system
        #: Declared up front by the client (``begin(read_only=True)``):
        #: the router may serve this transaction from replicas, the
        #: cache tier, or materialized views, and any write attempt is
        #: refused before it can dirty a page.
        self.declared_read_only = read_only
        self.state = TxnState.ACTIVE
        self.commit_ts: int | None = None
        self._created: list[tuple[Segment, RecordVersion, tuple[int, int]]] = []
        self._deleted: list[tuple[Segment, RecordVersion]] = []
        self._dirty_logs: list[LogManager] = []

    # -- write-set bookkeeping (called by mvcc / access layer) ---------------

    def note_created(self, segment: Segment, version: RecordVersion,
                     location: tuple[int, int]) -> None:
        self._created.append((segment, version, location))

    def note_deleted(self, segment: Segment, version: RecordVersion) -> None:
        self._deleted.append((segment, version))

    def require_writable(self) -> None:
        """Refuse writes under a declared read-only transaction —
        checked by the access layer *before* any version is mutated, so
        the refusal never leaves a half-applied write behind."""
        if self.declared_read_only:
            raise TransactionAborted(
                f"txn {self.txn_id} was declared read-only but attempted "
                f"a write"
            )

    def note_log(self, log: LogManager) -> None:
        if log not in self._dirty_logs:
            self._dirty_logs.append(log)

    @property
    def is_read_only(self) -> bool:
        return not self._created and not self._deleted

    @property
    def write_count(self) -> int:
        return len(self._created) + len(self._deleted)

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"txn {self.txn_id} is {self.state.value}, not active"
            )


class TransactionManager:
    """Cluster-wide transaction table and lifecycle driver."""

    def __init__(self, env: Environment,
                 oracle: TimestampOracle | None = None,
                 lock_manager: LockManager | None = None):
        self.env = env
        self.oracle = oracle or TimestampOracle()
        self.locks = lock_manager or LockManager(env)
        self._active: dict[int, Transaction] = {}
        #: Writer transactions mid-commit: commit timestamp assigned
        #: (their versions are already stamped, hence visible to late
        #: snapshots) but the commit not yet acknowledged — so cache
        #: entries and replica states may not reflect them yet.  The
        #: read tier bounces any snapshot at or past the oldest such
        #: timestamp to the primary (:meth:`safe_read_horizon`).
        self._committing: dict[int, int] = {}
        self.committed_count = 0
        self.aborted_count = 0
        #: Optional commit-path generator hook ``(txn, breakdown,
        #: priority)`` run after the local log force but before the
        #: commit is acknowledged.  The HA subsystem uses it for
        #: synchronous replica shipping; ``None`` means no extra work.
        self.on_commit: typing.Callable | None = None
        #: Plain-callable counterpart for aborts (no sim time passes):
        #: lets the replicator drop buffered log records of the loser.
        self.on_abort: typing.Callable | None = None
        #: Optional operation-history recorder (repro.audit).  ``None``
        #: by default: every hook site below and in the access layer is
        #: a single attribute test, so perf baselines and determinism
        #: goldens are untouched unless a run opts in.
        self.history = None

    # -- lifecycle -----------------------------------------------------------

    def begin(self, is_system: bool = False,
              read_only: bool = False) -> Transaction:
        txn = Transaction(self.oracle.next(), self.oracle.current, is_system,
                          read_only=read_only)
        self._active[txn.txn_id] = txn
        if self.history is not None:
            self.history.record_begin(txn, self.env.now)
        return txn

    def commit(self, txn: Transaction, breakdown: CostBreakdown | None = None,
               priority: int = 0, immediate_gc: bool = False):
        """Generator: make the transaction durable and visible.

        ``immediate_gc=True`` is the single-version (locking) storage
        discipline: versions this transaction superseded are physically
        reclaimed at commit — under strict 2PL no snapshot can still
        need them.  Under MVCC they linger for old readers (Fig. 3's
        storage-overhead line) until vacuumed.
        """
        txn.require_active()
        commit_start = self.env.now
        commit_ts = self.oracle.next()
        # Stamp the transaction early: the commit hooks (replication,
        # cache invalidation, view maintenance) run inside this call
        # and need the timestamp; a crash-abort mid-flush resets it.
        txn.commit_ts = commit_ts
        if not txn.is_read_only:
            self._committing[txn.txn_id] = commit_ts
        for _segment, version, _location in txn._created:
            version.created_ts = commit_ts
        for _segment, version in txn._deleted:
            version.deleted_ts = commit_ts
        for log in txn._dirty_logs:
            lsn = log.append(txn.txn_id, "commit")
            yield from log.flush(lsn, breakdown, priority)
        if self.on_commit is not None and not txn.is_read_only:
            # Synchronous replication: the commit is only acknowledged
            # once every live replica holder has the log tail.
            yield from self.on_commit(txn, breakdown, priority)
        # A crash-abort (fault injection) may have rolled us back while
        # the log force was in flight; the abort record it appended
        # supersedes our commit record during recovery.
        txn.require_active()
        if immediate_gc:
            for segment, version in txn._deleted:
                home = version.home or segment
                for page_no, slot, candidate in home.versions_for(version.key):
                    if candidate is version:
                        home.remove_version(version.key, page_no, slot)
                        break
        txn.commit_ts = commit_ts
        txn.state = TxnState.COMMITTED
        self._finish(txn)
        self.committed_count += 1
        if self.history is not None:
            self.history.record_commit(txn, commit_ts, commit_start,
                                       self.env.now)

    def abort(self, txn: Transaction) -> None:
        """Undo the transaction's in-memory effects (no I/O needed:
        nothing of an uncommitted transaction is required on disk)."""
        txn.require_active()
        # Undo in reverse order so update pairs unwind correctly.  The
        # stored location may be stale if a segment split relocated the
        # version, so resolve by identity through its current home.
        for segment, version, (page_no, slot) in reversed(txn._created):
            home = version.home or segment
            for pno, slot_no, candidate in home.versions_for(version.key):
                if candidate is version:
                    home.remove_version(version.key, pno, slot_no)
                    break
            else:
                raise RuntimeError(
                    f"undo lost track of version {version.key!r} "
                    f"created by txn {txn.txn_id}"
                )
        for _segment, version in txn._deleted:
            if version.deleted_by == txn.txn_id:
                version.deleted_by = None
                # A commit interrupted mid-flush may already have
                # stamped the delete; the abort wins.
                version.deleted_ts = None
        # Likewise a commit interrupted mid-flush already stamped the
        # transaction itself; the abort voids that too.
        txn.commit_ts = None
        for log in txn._dirty_logs:
            log.append(txn.txn_id, "abort")
        if self.on_abort is not None:
            self.on_abort(txn)
        txn.state = TxnState.ABORTED
        self._finish(txn)
        self.aborted_count += 1
        if self.history is not None:
            self.history.record_abort(txn, self.env.now)

    def _finish(self, txn: Transaction) -> None:
        self._active.pop(txn.txn_id, None)
        self._committing.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)

    # -- snapshot horizon ------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def active_transactions(self) -> list[Transaction]:
        return list(self._active.values())

    def oldest_active_begin_ts(self) -> int:
        """GC horizon: versions deleted before this are invisible to
        every live snapshot."""
        if not self._active:
            return self.oracle.current + 1
        return min(t.begin_ts for t in self._active.values())

    def safe_read_horizon(self) -> int:
        """Highest snapshot timestamp the read tier may serve from a
        *derived* copy (cache entry, replica row state, materialized
        view) right now.

        A commit stamps its timestamp and its versions at commit entry,
        then spends simulated time on log forces and replica shipping
        before cache invalidation and view maintenance run.  A snapshot
        taken at or past an in-flight commit's timestamp could therefore
        see that commit on the primary but miss it in a derived copy —
        so such snapshots must be answered by the primary.  Snapshots at
        or below the returned horizon are safe: every commit stamped at
        or before it has fully acknowledged, which includes invalidating
        the cache, shipping every live replica, and feeding the views.
        """
        if not self._committing:
            return self.oracle.current
        return min(self._committing.values()) - 1
