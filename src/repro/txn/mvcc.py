"""Multiversion concurrency control: snapshot visibility and GC.

"MVCC allows multiple versions of DB objects to exist; modifying a
record creates a new version of it without deleting the old one
immediately.  Hence, readers can still access old versions ...
especially useful for dynamic partitioning techniques, where records
are frequently moved, i.e., deleted and re-created on another
partition." (Sect. 3.5)

These are pure data operations on segments; the caller (the worker's
access layer) charges CPU and buffer/page costs around them.
"""

from __future__ import annotations

import typing

from repro.storage.record import RecordVersion
from repro.storage.segment import Segment
from repro.txn.manager import TransactionAborted

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.txn.manager import Transaction


class DuplicateKeyError(TransactionAborted):
    """An insert found a visible version of the key already present.

    An abortable condition: racing inserters roll back and retry
    instead of crashing the simulation.
    """


def is_visible(version: RecordVersion, txn: "Transaction") -> bool:
    """Snapshot-isolation visibility of one version to one transaction."""
    created_visible = (
        version.created_by == txn.txn_id
        or (version.created_ts is not None and version.created_ts <= txn.begin_ts)
    )
    if not created_visible:
        return False
    deleted_visible = (
        version.deleted_by == txn.txn_id
        or (version.deleted_ts is not None and version.deleted_ts <= txn.begin_ts)
    )
    return not deleted_visible


def visible_version(segment: Segment, key: typing.Any,
                    txn: "Transaction") -> RecordVersion | None:
    """The (unique) version of ``key`` visible to ``txn``, if any."""
    for _page_no, _slot, version in segment.versions_for(key):
        if is_visible(version, txn):
            return version
    return None


def newest_version(segment: Segment, key: typing.Any) -> RecordVersion | None:
    chain = segment.versions_for(key)
    return chain[0][2] if chain else None


def has_write_conflict(segment: Segment, key: typing.Any,
                       txn: "Transaction") -> bool:
    """First-updater-wins check before a write to ``key``.

    True when the newest version was created or delete-marked by a
    *different* transaction that is either still in flight or committed
    after our snapshot.
    """
    newest = newest_version(segment, key)
    if newest is None:
        return False
    if newest.created_by != txn.txn_id:
        if newest.created_ts is None or newest.created_ts > txn.begin_ts:
            return True
    if newest.deleted_by is not None and newest.deleted_by != txn.txn_id:
        if newest.deleted_ts is None or newest.deleted_ts > txn.begin_ts:
            return True
    return False


def insert(segment: Segment, version: RecordVersion,
           txn: "Transaction") -> tuple[int, int]:
    """Insert a brand-new record version; duplicate-key checked against
    the transaction's snapshot."""
    txn.require_writable()
    existing = visible_version(segment, version.key, txn)
    if existing is not None:
        raise DuplicateKeyError(f"key {version.key!r} already visible")
    location = segment.insert_version(version)
    txn.note_created(segment, version, location)
    return location


def update(segment: Segment, key: typing.Any, new_version: RecordVersion,
           txn: "Transaction") -> tuple[int, int]:
    """Delete-mark the visible version and chain a new one."""
    from repro.txn.manager import WriteConflictError

    txn.require_writable()
    if has_write_conflict(segment, key, txn):
        raise WriteConflictError(f"write-write conflict on key {key!r}")
    current = visible_version(segment, key, txn)
    if current is None:
        raise KeyError(f"key {key!r} not visible to txn {txn.txn_id}")
    current.deleted_by = txn.txn_id
    txn.note_deleted(segment, current)
    # Version chains may overflow the extent until vacuum runs.
    location = segment.insert_version(new_version, allow_overflow=True)
    txn.note_created(segment, new_version, location)
    return location


def delete(segment: Segment, key: typing.Any, txn: "Transaction") -> None:
    """Delete-mark the visible version of ``key``."""
    from repro.txn.manager import WriteConflictError

    txn.require_writable()
    if has_write_conflict(segment, key, txn):
        raise WriteConflictError(f"write-write conflict on key {key!r}")
    current = visible_version(segment, key, txn)
    if current is None:
        raise KeyError(f"key {key!r} not visible to txn {txn.txn_id}")
    current.deleted_by = txn.txn_id
    txn.note_deleted(segment, current)


def vacuum(segment: Segment, horizon_ts: int) -> int:
    """Garbage-collect versions deleted before every active snapshot.

    Returns the number of versions reclaimed.  This is what eventually
    returns the MVCC storage overhead of Fig. 3 back to baseline.
    """
    reclaimed, _exhausted = vacuum_chunk(segment, horizon_ts, limit=None)
    return reclaimed


def vacuum_chunk(segment: Segment, horizon_ts: int,
                 limit: int | None = None) -> tuple[int, bool]:
    """Bounded vacuum: reclaim at most ``limit`` dead versions.

    Returns ``(reclaimed, exhausted)``; ``exhausted`` is True when the
    segment holds no further reclaimable versions at this horizon, so a
    resumable scheduler knows whether to revisit the segment next tick
    or move on.  ``limit=None`` degenerates to a full sweep.
    """
    dead: list[tuple[typing.Any, int, int]] = []
    exhausted = True
    for page_no, slot, version in segment.scan_versions():
        if version.deleted_ts is not None and version.deleted_ts < horizon_ts:
            dead.append((version.key, page_no, slot))
            if limit is not None and len(dead) >= limit:
                exhausted = False
                break
    for key, page_no, slot in dead:
        segment.remove_version(key, page_no, slot)
    return len(dead), exhausted
