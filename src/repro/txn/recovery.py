"""Crash recovery from the write-ahead log.

"In case of DB failures, the log file is needed to reconstruct
partitions and to perform appropriate UNDO and REDO operations."
(Sect. 4.3)  This module implements the REDO side of that contract:
rebuilding a node's partition contents from its WAL after a crash,
starting at the last checkpoint.

The log records written by the access layer carry logical payloads —
``(table, key, values)`` for inserts/updates, ``(table, key)`` for
deletes — so recovery replays them through fresh partitions.  Segment
moves append checkpoints, which is why "log files remain on the
original node" is safe: everything after the checkpoint concerns only
data still owned locally.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.storage.checksum import IntegrityError
from repro.storage.record import RecordVersion
from repro.txn.wal import LogManager, LogRecord

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.catalog import Partition

#: Pseudo transaction id/timestamp for replayed (committed) state.
REDO_TXN_ID = -1

#: Every REDO pass stamps the versions it rebuilds with its own
#: synthetic writer id (-10001, -10002, ...).  Version identity is
#: ``(created_by, created_ts)`` — the isolation auditor keys on it —
#: so reusing one constant would alias a key's rebuilt copy with its
#: pre-crash copy and report phantom lost updates across a failover.
#: The range sits far below the torn-write ids (-1000 down) and the
#: replica base id (-2).
_REDO_WRITER_BASE = -10_000
_redo_generations = itertools.count(1)


def _fresh_redo_writer() -> int:
    return _REDO_WRITER_BASE - next(_redo_generations)


@dataclasses.dataclass
class RecoveryReport:
    """What a recovery pass did."""

    analyzed_records: int = 0
    committed_transactions: int = 0
    losers_discarded: int = 0
    redone_inserts: int = 0
    redone_updates: int = 0
    redone_deletes: int = 0
    start_lsn: int = 0
    #: Rows loaded from a fuzzy-checkpoint base image before REDO.
    image_rows: int = 0
    #: Records discarded as a torn WAL tail (a crash mid-flush left a
    #: corrupt suffix; nothing in it was ever acknowledged).
    torn_records_discarded: int = 0

    @property
    def redone_total(self) -> int:
        return self.redone_inserts + self.redone_updates + self.redone_deletes


def last_checkpoint_lsn(log: LogManager) -> int:
    """The LSN of the most recent checkpoint record (0 if none)."""
    tracked = getattr(log, "last_checkpoint_lsn", None)
    if tracked is not None:
        return tracked
    for record in reversed(log.records):
        if record.kind == "checkpoint":
            return record.lsn
    return 0


def redo_start_lsn(log: LogManager) -> int:
    """Where REDO begins: the newest checkpoint's ``redo_lsn`` when it
    carries a fuzzy-checkpoint payload, otherwise the checkpoint's own
    LSN (the historical move-checkpoint semantics), 0 with no
    checkpoint at all."""
    tracked = getattr(log, "last_checkpoint_redo_lsn", None)
    if tracked is not None:
        return tracked
    for record in reversed(log.records):
        if record.kind == "checkpoint":
            payload_redo = getattr(record.payload, "redo_lsn", None)
            return record.lsn if payload_redo is None else payload_redo
    return 0


def _iter_after(log: LogManager, start_lsn: int):
    """Records with LSN > ``start_lsn`` — whole-segment skip when the
    log supports it, plain filter for duck-typed logs in tests."""
    iter_from = getattr(log, "iter_from", None)
    if iter_from is not None:
        return iter_from(start_lsn)
    return (r for r in log.records if r.lsn > start_lsn)


def integrity_scan(log: LogManager, start_lsn: int = 0
                   ) -> tuple[list[LogRecord], int]:
    """Verify every record's checksum before replay.

    Returns ``(verified_records, torn_discarded)``.  A corrupt record
    with *no* valid record after it is a **torn tail**: a crash mid
    log-flush persisted only a prefix of the last write(s).  Nothing
    in the torn suffix was ever acknowledged (the flush never
    returned), so it is discarded — notably, a torn *commit* record
    does NOT make its transaction committed.  A corrupt record that is
    *followed* by valid records cannot be explained by a torn flush —
    that is mid-log bit rot, and replaying around it could resurrect
    or drop acknowledged effects, so it raises ``IntegrityError`` and
    the caller must fall back to another replica or fence.
    """
    records = list(_iter_after(log, start_lsn))
    bad = None
    for i, record in enumerate(records):
        try:
            record.verify(where="wal-replay")
        except IntegrityError:
            bad = i
            break
    if bad is None:
        return records, 0
    for later in records[bad + 1:]:
        try:
            later.verify(where="wal-replay")
        except IntegrityError:
            continue
        raise IntegrityError(
            f"mid-log corruption: record lsn={records[bad].lsn} of "
            f"{log.name if hasattr(log, 'name') else 'log'} fails its "
            f"checksum but valid records follow",
            where="wal-replay", detail=records[bad].lsn,
        )
    return records[:bad], len(records) - bad


def analyze(log: LogManager, start_lsn: int = 0,
            report: RecoveryReport | None = None
            ) -> tuple[list[LogRecord], set[int], int]:
    """ARIES-style analysis pass (simplified): the data records after
    ``start_lsn``, the set of committed transaction ids, and the count
    of loser transactions whose effects must not be replayed.

    Every scanned record is checksum-verified first (see
    :func:`integrity_scan`); a torn tail is discarded and counted on
    ``report``, mid-log corruption propagates as ``IntegrityError``.
    """
    committed: set[int] = set()
    aborted: set[int] = set()
    seen: set[int] = set()
    data_records: list[LogRecord] = []
    records, torn = integrity_scan(log, start_lsn)
    if report is not None:
        report.torn_records_discarded = torn
    for record in records:
        if record.kind == "commit":
            committed.add(record.txn_id)
        if record.kind == "abort":
            # An abort supersedes a commit of the same transaction —
            # the pair coexists only when a crash-abort raced a
            # mid-flight commit, and the abort matches what happened
            # in memory.
            aborted.add(record.txn_id)
        if record.kind in ("insert", "update", "delete"):
            seen.add(record.txn_id)
            data_records.append(record)
    committed -= aborted
    losers = len(seen - committed)
    return data_records, committed, losers


def redo(partitions_by_table: dict[str, "Partition"],
         records: typing.Sequence[LogRecord],
         committed: set[int],
         writer: int | None = None) -> RecoveryReport:
    """Replay committed data records, in log order, into fresh
    partitions.

    Records of loser transactions are skipped (their effects were never
    durable: under the no-steal-ish discipline here, uncommitted pages
    may be on disk but the rebuilt state simply omits them — the
    classic logical-UNDO shortcut).
    """
    report = RecoveryReport(analyzed_records=len(records),
                            committed_transactions=len(committed))
    if writer is None:
        writer = _fresh_redo_writer()
    for record in records:
        if record.txn_id not in committed:
            continue
        table = record.payload[0] if record.payload else None
        if table is None or table not in partitions_by_table:
            continue
        partition = partitions_by_table[table]
        if record.kind in ("insert", "update"):
            _table, _key, values = record.payload
            _apply_upsert(partition, tuple(values), record.kind, report,
                          writer)
        elif record.kind == "delete":
            _table, key = record.payload
            _apply_delete(partition, key, report)
    return report


def _apply_upsert(partition: "Partition", values: tuple, kind: str,
                  report: RecoveryReport,
                  writer: int = REDO_TXN_ID) -> None:
    schema = partition.schema
    key = schema.key_of(values)
    segment = partition.ensure_segment_for(key)
    # Newer version wins: mark any existing replayed version deleted.
    for page_no, slot, version in list(segment.versions_for(key)):
        segment.remove_version(key, page_no, slot)
    version = RecordVersion.make(schema, values, writer)
    version.created_ts = 1
    segment.insert_version(version, allow_overflow=True)
    if kind == "insert":
        report.redone_inserts += 1
    else:
        report.redone_updates += 1


def _apply_delete(partition: "Partition", key, report: RecoveryReport) -> None:
    target = partition.segment_for(key)
    if target is None or not hasattr(target, "versions_for"):
        return
    for page_no, slot, _version in list(target.versions_for(key)):
        target.remove_version(key, page_no, slot)
    report.redone_deletes += 1


def recover_worker_table(log: LogManager, partition: "Partition",
                         table: str,
                         from_checkpoint: bool = True,
                         image=None) -> RecoveryReport:
    """Rebuild one table's local partition from the node's WAL.

    With ``from_checkpoint`` (the normal case), replay starts at the
    last checkpoint — segment moves act as checkpoints, so records
    moved away before the crash are intentionally NOT resurrected here
    (they live on, and are logged by, their new owner).

    ``image`` is a fuzzy-checkpoint base image (see
    :mod:`repro.txn.checkpoint`): the partition rows that were durable
    when the newest checkpoint was taken.  When it matches the log's
    newest checkpoint, its rows are loaded first and REDO replays only
    the bounded suffix from the checkpoint's ``redo_lsn`` — the whole
    point of fuzzy checkpoints.  A stale image (a newer move
    checkpoint has been written since) is ignored.
    """
    if not from_checkpoint:
        start = 0
        image = None
    else:
        if image is not None and \
                image.checkpoint_lsn != last_checkpoint_lsn(log):
            image = None
        start = redo_start_lsn(log)
    # ``redo_lsn`` points AT the first record REDO must replay (the
    # oldest in-flight transaction's first write), so analysis begins
    # one LSN earlier — analyze() iterates strictly after its argument.
    report = RecoveryReport()
    records, committed, losers = analyze(log, max(start - 1, 0), report)
    if report.torn_records_discarded:
        # Physically drop the torn suffix (real recovery truncates the
        # tail it discards) so post-restart appends don't turn the torn
        # record into apparent mid-log corruption for later replays.
        discard = getattr(log, "discard_tail", None)
        if discard is not None:
            discard(report.torn_records_discarded)
    writer = _fresh_redo_writer()
    if image is not None:
        for key, values, _nbytes in image.rows:
            _apply_upsert(partition, tuple(values), "insert", report,
                          writer)
        report.image_rows = report.redone_inserts
        report.redone_inserts = 0
    tail = redo({table: partition}, records, committed, writer)
    report.analyzed_records = tail.analyzed_records
    report.committed_transactions = tail.committed_transactions
    report.redone_inserts += tail.redone_inserts
    report.redone_updates = tail.redone_updates
    report.redone_deletes = tail.redone_deletes
    report.losers_discarded = losers
    report.start_lsn = start
    return report
