"""Write-ahead logging with group commit and log shipping.

"For durability reasons, write-ahead logs must be maintained at all
times.  When repartitioning, although record ownership changes, log
files remain on the original node ...  Since moving a partition
involves read-locking the entire partition, this operation acts as a
checkpoint." (Sect. 4.3)

The helper-node experiment (Fig. 8) ships log writes to a helper over
the network instead of the local disk — implemented here as a pluggable
sink.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.disk import Disk
from repro.hardware.network import Network, NetworkPort
from repro.metrics.breakdown import CostBreakdown
from repro.sim.engine import Environment
from repro.sim.resources import Resource

#: Minimum physical write when forcing the log (one log block).
LOG_BLOCK_BYTES = 4096

#: Fixed serialized overhead per log record.
LOG_RECORD_HEADER_BYTES = 48


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One logical log record."""

    lsn: int
    txn_id: int
    kind: str  # insert | delete | update | commit | abort | checkpoint
    payload: typing.Any = None
    nbytes: int = LOG_RECORD_HEADER_BYTES


class LogShippingSink:
    """A remote log destination on a helper node (Fig. 8)."""

    def __init__(self, network: Network, local_port: NetworkPort,
                 remote_port: NetworkPort, remote_disk: Disk):
        self.network = network
        self.local_port = local_port
        self.remote_port = remote_port
        self.remote_disk = remote_disk

    def write(self, nbytes: int, priority: int):
        """Generator: push log bytes to the helper and persist there."""
        yield from self.network.transfer(
            self.local_port, self.remote_port, nbytes, priority
        )
        yield from self.remote_disk.write(nbytes, sequential=True, priority=priority)


class LogManager:
    """Per-node WAL: in-memory append, forced flush with group commit."""

    def __init__(self, env: Environment, disk: Disk, name: str = "wal"):
        self.env = env
        self.disk = disk
        self.name = name
        self.records: list[LogRecord] = []
        self._next_lsn = 0
        self._appended_bytes = 0
        self._flushed_bytes = 0
        self.flushed_lsn = 0
        self._flush_lock = Resource(env, capacity=1, name=f"{name}.flush")
        self._sink: LogShippingSink | None = None
        self.flush_count = 0
        self.bytes_flushed_total = 0

    # -- sink management (log shipping) --------------------------------------

    def ship_to(self, sink: LogShippingSink) -> None:
        """Redirect forced log writes to a helper node."""
        self._sink = sink

    def ship_locally(self) -> None:
        """Return to writing the local log disk."""
        self._sink = None

    @property
    def is_shipping(self) -> bool:
        return self._sink is not None

    # -- append / flush ------------------------------------------------------

    def append(self, txn_id: int, kind: str, payload: typing.Any = None,
               nbytes: int | None = None) -> int:
        """Add a record to the in-memory log tail; returns its LSN.

        Durability requires a later :meth:`flush` up to this LSN.
        """
        self._next_lsn += 1
        size = LOG_RECORD_HEADER_BYTES if nbytes is None else nbytes
        record = LogRecord(self._next_lsn, txn_id, kind, payload, size)
        self.records.append(record)
        self._appended_bytes += size
        return record.lsn

    def flush(self, lsn: int, breakdown: CostBreakdown | None = None,
              priority: int = 0):
        """Generator: force the log out at least up to ``lsn``.

        Group commit falls out of the flush lock: committers that queue
        behind an in-flight flush usually find their LSN already
        covered when they get the lock and return without I/O.
        """
        t0 = self.env.now
        while self.flushed_lsn < lsn:
            request = self._flush_lock.request(priority)
            yield request
            try:
                if self.flushed_lsn >= lsn:
                    break
                pending = self._appended_bytes - self._flushed_bytes
                target_lsn = self._next_lsn
                target_bytes = self._appended_bytes
                nbytes = max(pending, LOG_BLOCK_BYTES)
                if self._sink is not None:
                    yield from self._sink.write(nbytes, priority)
                else:
                    yield from self.disk.write(nbytes, sequential=True,
                                               priority=priority)
                self.flushed_lsn = target_lsn
                self._flushed_bytes = target_bytes
                self.flush_count += 1
                self.bytes_flushed_total += nbytes
            finally:
                self._flush_lock.release(request)
        if breakdown is not None:
            breakdown.add("logging", self.env.now - t0)

    # -- checkpoints and recovery ---------------------------------------------

    def checkpoint(self, payload: typing.Any = None) -> int:
        """Append a checkpoint marker (partition moves act as one)."""
        return self.append(txn_id=0, kind="checkpoint", payload=payload)

    def truncate_before(self, lsn: int) -> int:
        """Drop records older than ``lsn``; returns how many were cut.

        After a successful partition move "the old copies and the old
        log file are no longer required".
        """
        keep = [r for r in self.records if r.lsn >= lsn]
        cut = len(self.records) - len(keep)
        self.records = keep
        return cut

    def committed_ops_since(self, lsn: int = 0) -> list[LogRecord]:
        """Redo scan: data records of transactions with a flushed-side
        commit record, in log order (the recovery contract).

        An abort record supersedes a commit record of the same
        transaction — the pair can only coexist when a crash-abort
        raced a mid-flight commit, and the abort reflects the
        in-memory outcome.
        """
        committed = {
            r.txn_id for r in self.records if r.kind == "commit" and r.lsn > lsn
        }
        committed -= {r.txn_id for r in self.records if r.kind == "abort"}
        return [
            r for r in self.records
            if r.lsn > lsn and r.txn_id in committed
            and r.kind in ("insert", "delete", "update")
        ]
