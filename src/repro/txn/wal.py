"""Write-ahead logging with group commit, log shipping, and segments.

"For durability reasons, write-ahead logs must be maintained at all
times.  When repartitioning, although record ownership changes, log
files remain on the original node ...  Since moving a partition
involves read-locking the entire partition, this operation acts as a
checkpoint." (Sect. 4.3)

The helper-node experiment (Fig. 8) ships log writes to a helper over
the network instead of the local disk — implemented here as a pluggable
sink.

Endurance runs hold the log for simulated hours, so the record store is
*segmented*: the tail segment absorbs appends, fills up, and is sealed;
:meth:`LogManager.truncate_before` drops whole sealed segments in O(1)
once they fall behind the recycling horizon (the checkpoint/replication/
move minimum computed by :mod:`repro.txn.checkpoint`), recycling their
shells for future tail segments instead of growing the heap forever.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.hardware.disk import Disk
from repro.hardware.network import Network, NetworkPort
from repro.metrics.breakdown import CostBreakdown
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.storage.checksum import checksum_of, verify as _verify_checksum

#: Minimum physical write when forcing the log (one log block).
LOG_BLOCK_BYTES = 4096

#: Fixed serialized overhead per log record.
LOG_RECORD_HEADER_BYTES = 48

#: Records per log segment before the tail is sealed and a new one
#: starts.  Small enough that a horizon advance frees memory promptly,
#: large enough that sealing is rare on the append path.
DEFAULT_SEGMENT_RECORDS = 1024

#: Recycled (empty) segment shells kept for reuse per log.
_MAX_FREE_SEGMENTS = 8


def log_record_checksum(lsn: int, txn_id: int, kind: str,
                        payload: typing.Any) -> int:
    """The CRC32 a well-formed log record carries (over its header
    fields and the canonical serialization of its payload)."""
    return checksum_of((lsn, txn_id, kind, payload))


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One logical log record."""

    lsn: int
    txn_id: int
    kind: str  # insert | delete | update | commit | abort | checkpoint
    payload: typing.Any = None
    nbytes: int = LOG_RECORD_HEADER_BYTES
    #: CRC32 over (lsn, txn_id, kind, payload), stamped by
    #: ``LogManager.append``.  ``None`` on hand-built records (test
    #: fixtures) — those verify trivially.
    checksum: int | None = dataclasses.field(default=None, compare=False)

    def verify(self, *, where: str = "wal-replay") -> None:
        """Raise ``IntegrityError`` unless the record still matches the
        checksum it was appended with (bit rot / torn write detection
        on every replay and shipment)."""
        _verify_checksum((self.lsn, self.txn_id, self.kind, self.payload),
                         self.checksum, where=where, detail=self.lsn)


class LogSegment:
    """A fixed-capacity run of consecutive records.

    Only the youngest segment of a log accepts appends; once full it is
    *sealed*.  A sealed segment whose last LSN falls behind the
    recycling horizon is dropped whole — an O(1) deque pop — and its
    shell reused for a future tail segment.
    """

    __slots__ = ("records", "sealed")

    def __init__(self):
        self.records: list[LogRecord] = []
        self.sealed = False

    @property
    def first_lsn(self) -> int:
        return self.records[0].lsn if self.records else 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "sealed" if self.sealed else "tail"
        return f"<LogSegment {state} lsn {self.first_lsn}..{self.last_lsn}>"


class LogRecordsView:
    """Sequence view over a log's live records, across segments.

    Backward-compatible stand-in for the monolithic ``records`` list:
    iteration, ``len``, indexing, ``reversed``, ``index`` — and item
    assignment, which writes through to the owning segment (the audit
    suite's tamper helpers rely on in-place mutation being visible to
    later replays).
    """

    __slots__ = ("_log",)

    def __init__(self, log: "LogManager"):
        self._log = log

    def __len__(self) -> int:
        return self._log.live_records

    def __bool__(self) -> bool:
        return self._log.live_records > 0

    def __iter__(self):
        for segment in self._log._segments:
            yield from segment.records

    def __reversed__(self):
        for segment in reversed(self._log._segments):
            yield from reversed(segment.records)

    def _locate(self, index: int) -> tuple[list[LogRecord], int]:
        n = self._log.live_records
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("log record index out of range")
        for segment in self._log._segments:
            m = len(segment.records)
            if index < m:
                return segment.records, index
            index -= m
        raise IndexError("log record index out of range")  # pragma: no cover

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        records, i = self._locate(index)
        return records[i]

    def __setitem__(self, index: int, value: LogRecord) -> None:
        records, i = self._locate(index)
        records[i] = value

    def __contains__(self, record) -> bool:
        return any(r is record or r == record for r in self)

    def index(self, record) -> int:
        for i, r in enumerate(self):
            if r is record or r == record:
                return i
        raise ValueError(f"{record!r} is not in the log")

    def count(self, record) -> int:
        return sum(1 for r in self if r == record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogRecordsView of {self._log.name}: {len(self)} records>"


class LogShippingSink:
    """A remote log destination on a helper node (Fig. 8)."""

    def __init__(self, network: Network, local_port: NetworkPort,
                 remote_port: NetworkPort, remote_disk: Disk):
        self.network = network
        self.local_port = local_port
        self.remote_port = remote_port
        self.remote_disk = remote_disk

    def write(self, nbytes: int, priority: int):
        """Generator: push log bytes to the helper and persist there."""
        yield from self.network.transfer(
            self.local_port, self.remote_port, nbytes, priority
        )
        yield from self.remote_disk.write(nbytes, sequential=True, priority=priority)


class LogManager:
    """Per-node WAL: in-memory append, forced flush with group commit."""

    def __init__(self, env: Environment, disk: Disk, name: str = "wal",
                 segment_records: int = DEFAULT_SEGMENT_RECORDS):
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.env = env
        self.disk = disk
        self.name = name
        self.segment_records = segment_records
        self._segments: collections.deque[LogSegment] = collections.deque()
        self._segments.append(LogSegment())
        self._free: list[LogSegment] = []
        self.records = LogRecordsView(self)
        self._next_lsn = 0
        self._appended_bytes = 0
        self._flushed_bytes = 0
        self.flushed_lsn = 0
        self._flush_lock = Resource(env, capacity=1, name=f"{name}.flush")
        self._sink: LogShippingSink | None = None
        self.flush_count = 0
        self.bytes_flushed_total = 0
        #: The most recently appended record (the hot-path accessor the
        #: access layer uses instead of indexing the records view).
        self.tail: LogRecord | None = None
        # -- retention bookkeeping ----------------------------------------
        #: Records / payload bytes currently held in memory (after
        #: truncation, not since birth).
        self.live_records = 0
        self.live_bytes = 0
        #: LSN of the newest checkpoint record, and the REDO start LSN
        #: it implies (its own LSN for plain/move checkpoints, the
        #: payload's ``redo_lsn`` for fuzzy checkpoints).
        self.last_checkpoint_lsn = 0
        self.last_checkpoint_redo_lsn = 0
        #: ``_appended_bytes`` as of the newest checkpoint — the delta
        #: is the dirtied-bytes charge of the next fuzzy checkpoint.
        self.appended_at_last_checkpoint = 0
        #: txn_id -> LSN of the transaction's first data record still
        #: unresolved (popped on commit/abort) — the active-transaction
        #: table a fuzzy checkpoint snapshots.
        self._txn_first_lsn: dict[int, int] = {}
        # -- segment lifecycle counters -----------------------------------
        self.segments_sealed = 0
        self.segments_dropped = 0
        self.segments_recycled = 0
        self.segments_allocated = 1
        self.records_truncated = 0

    # -- sink management (log shipping) --------------------------------------

    def ship_to(self, sink: LogShippingSink) -> None:
        """Redirect forced log writes to a helper node."""
        self._sink = sink

    def ship_locally(self) -> None:
        """Return to writing the local log disk."""
        self._sink = None

    @property
    def is_shipping(self) -> bool:
        return self._sink is not None

    # -- segment plumbing -----------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def _push_segment(self) -> LogSegment:
        if self._free:
            segment = self._free.pop()
            self.segments_recycled += 1
        else:
            segment = LogSegment()
            self.segments_allocated += 1
        self._segments.append(segment)
        return segment

    def _drop_segment(self) -> LogSegment:
        segment = self._segments.popleft()
        segment.records.clear()
        segment.sealed = False
        self.segments_dropped += 1
        if len(self._free) < _MAX_FREE_SEGMENTS:
            self._free.append(segment)
        return segment

    # -- append / flush ------------------------------------------------------

    def append(self, txn_id: int, kind: str, payload: typing.Any = None,
               nbytes: int | None = None) -> int:
        """Add a record to the in-memory log tail; returns its LSN.

        Durability requires a later :meth:`flush` up to this LSN.
        """
        self._next_lsn += 1
        size = LOG_RECORD_HEADER_BYTES if nbytes is None else nbytes
        record = LogRecord(
            self._next_lsn, txn_id, kind, payload, size,
            checksum=log_record_checksum(self._next_lsn, txn_id, kind,
                                         payload),
        )
        segment = self._segments[-1]
        if len(segment.records) >= self.segment_records:
            segment.sealed = True
            self.segments_sealed += 1
            segment = self._push_segment()
        segment.records.append(record)
        self.tail = record
        self.live_records += 1
        self.live_bytes += size
        self._appended_bytes += size
        if txn_id > 0:
            if kind == "commit" or kind == "abort":
                self._txn_first_lsn.pop(txn_id, None)
            elif txn_id not in self._txn_first_lsn:
                self._txn_first_lsn[txn_id] = record.lsn
        elif kind == "checkpoint":
            self.last_checkpoint_lsn = record.lsn
            redo = getattr(payload, "redo_lsn", None)
            self.last_checkpoint_redo_lsn = (
                record.lsn if redo is None else redo
            )
            self.appended_at_last_checkpoint = self._appended_bytes
        return record.lsn

    def flush(self, lsn: int, breakdown: CostBreakdown | None = None,
              priority: int = 0):
        """Generator: force the log out at least up to ``lsn``.

        Group commit falls out of the flush lock: committers that queue
        behind an in-flight flush usually find their LSN already
        covered when they get the lock and return without I/O.
        """
        t0 = self.env.now
        while self.flushed_lsn < lsn:
            request = self._flush_lock.request(priority)
            yield request
            try:
                if self.flushed_lsn >= lsn:
                    break
                pending = self._appended_bytes - self._flushed_bytes
                target_lsn = self._next_lsn
                target_bytes = self._appended_bytes
                nbytes = max(pending, LOG_BLOCK_BYTES)
                if self._sink is not None:
                    yield from self._sink.write(nbytes, priority)
                else:
                    yield from self.disk.write(nbytes, sequential=True,
                                               priority=priority)
                self.flushed_lsn = target_lsn
                self._flushed_bytes = target_bytes
                self.flush_count += 1
                self.bytes_flushed_total += nbytes
            finally:
                self._flush_lock.release(request)
        if breakdown is not None:
            breakdown.add("logging", self.env.now - t0)

    # -- checkpoints and recovery ---------------------------------------------

    def checkpoint(self, payload: typing.Any = None) -> int:
        """Append a checkpoint marker (partition moves act as one)."""
        return self.append(txn_id=0, kind="checkpoint", payload=payload)

    def oldest_active_redo_lsn(self) -> int | None:
        """LSN of the oldest data record of a still-open transaction,
        or None when no transaction with logged writes is open — the
        lower bound a fuzzy checkpoint's ``redo_lsn`` must respect."""
        if not self._txn_first_lsn:
            return None
        return min(self._txn_first_lsn.values())

    def truncate_before(self, lsn: int) -> int:
        """Drop records older than ``lsn``; returns how many were cut.

        After a successful partition move "the old copies and the old
        log file are no longer required".

        Whole segments behind the horizon are dropped in O(1) each and
        their shells recycled; only the single boundary segment needs a
        prefix trim, keeping the LSN-exact contract of the monolithic
        implementation at amortized O(1) per retired record.
        """
        cut = 0
        while len(self._segments) > 1:
            head = self._segments[0]
            if not head.records or head.records[-1].lsn >= lsn:
                break
            n = len(head.records)
            nbytes = sum(r.nbytes for r in head.records)
            cut += n
            self.live_records -= n
            self.live_bytes -= nbytes
            self._drop_segment()
        head = self._segments[0].records
        keep_from = 0
        while keep_from < len(head) and head[keep_from].lsn < lsn:
            keep_from += 1
        if keep_from:
            trimmed = head[:keep_from]
            del head[:keep_from]
            cut += len(trimmed)
            self.live_records -= len(trimmed)
            self.live_bytes -= sum(r.nbytes for r in trimmed)
        self.records_truncated += cut
        return cut

    def discard_tail(self, count: int) -> int:
        """Physically drop the newest ``count`` records (a torn tail
        detected at recovery: the crash persisted only a prefix of the
        final flush, so the suffix never existed on disk).  LSNs are
        not reissued — the sequence keeps climbing past the hole, as a
        real log switch would.  Returns how many records were cut."""
        cut = 0
        while cut < count and self._segments:
            segment = self._segments[-1]
            if not segment.records:
                if len(self._segments) == 1:
                    break
                self._segments.pop()
                continue
            record = segment.records.pop()
            cut += 1
            self.live_records -= 1
            self.live_bytes -= record.nbytes
            self._appended_bytes -= record.nbytes
            if record.txn_id > 0:
                self._txn_first_lsn.pop(record.txn_id, None)
        tail = self._segments[-1] if self._segments else None
        if tail is not None and not tail.records and len(self._segments) > 1:
            self._segments.pop()
            tail = self._segments[-1]
        if tail is not None:
            tail.sealed = False
            self.tail = tail.records[-1] if tail.records else None
        if self._flushed_bytes > self._appended_bytes:
            self._flushed_bytes = self._appended_bytes
        return cut

    def iter_from(self, lsn: int) -> typing.Iterator[LogRecord]:
        """Iterate live records with LSN strictly greater than ``lsn``,
        skipping whole segments that end at or before it — the bounded
        REDO scan (recovery never touches pre-checkpoint segments)."""
        for segment in self._segments:
            records = segment.records
            if not records or records[-1].lsn <= lsn:
                continue
            if records[0].lsn > lsn:
                yield from records
                continue
            # Boundary segment: LSNs are consecutive within a segment.
            lo, hi = 0, len(records)
            while lo < hi:
                mid = (lo + hi) // 2
                if records[mid].lsn <= lsn:
                    lo = mid + 1
                else:
                    hi = mid
            for i in range(lo, len(records)):
                yield records[i]

    def committed_ops_since(self, lsn: int = 0) -> list[LogRecord]:
        """Redo scan: data records of transactions with a flushed-side
        commit record, in log order (the recovery contract).

        An abort record supersedes a commit record of the same
        transaction — the pair can only coexist when a crash-abort
        raced a mid-flight commit, and the abort reflects the
        in-memory outcome.
        """
        committed: set[int] = set()
        aborted: set[int] = set()
        for r in self.iter_from(lsn):
            if r.kind == "commit":
                committed.add(r.txn_id)
            elif r.kind == "abort":
                aborted.add(r.txn_id)
        committed -= aborted
        return [
            r for r in self.iter_from(lsn)
            if r.txn_id in committed
            and r.kind in ("insert", "delete", "update")
        ]

    # -- introspection --------------------------------------------------------

    def retention_stats(self) -> dict[str, int]:
        """Segment-lifecycle counters for the metrics report."""
        return {
            "live_records": self.live_records,
            "live_bytes": self.live_bytes,
            "segments": len(self._segments),
            "segments_sealed": self.segments_sealed,
            "segments_dropped": self.segments_dropped,
            "segments_recycled": self.segments_recycled,
            "segments_allocated": self.segments_allocated,
            "records_truncated": self.records_truncated,
            "next_lsn": self._next_lsn,
        }
