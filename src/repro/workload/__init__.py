"""TPC-C workload substrate.

"For all experiments, we are using the dataset from the well-known
TPC-C benchmark ...  We use queries from the TPC-C benchmark as
workload drivers ...  we modified all queries to exclude (emulated)
user interaction and to execute in 'a single run' on the database."
(Sect. 5.1)  The deviations the paper lists (no think-time compliance,
no response-time constraints, custom mix) are configuration knobs here.
"""

from repro.workload.tpcc_schema import TPCC_TABLES, TpccConfig, table_schema
from repro.workload.tpcc_gen import load_tpcc
from repro.workload.tpcc_txns import (
    DEFAULT_MIX,
    TpccContext,
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)
from repro.workload.client import OltpClient
from repro.workload.driver import WorkloadDriver, start_vacuum_daemon

__all__ = [
    "DEFAULT_MIX",
    "OltpClient",
    "TPCC_TABLES",
    "TpccConfig",
    "TpccContext",
    "WorkloadDriver",
    "delivery",
    "load_tpcc",
    "new_order",
    "order_status",
    "payment",
    "start_vacuum_daemon",
    "stock_level",
    "table_schema",
]
