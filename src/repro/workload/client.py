"""The OLTP client model.

"In each experiment, we spawned a number of OLTP clients, sending
queries to the DBMS.  Each client submits a randomly selected query at
specified intervals.  If the query is answered, the next query is
delayed until the subsequent interval ...  By limiting the maximum
throughput at the client side, this experiment differs from traditional
benchmarking." (Sect. 5.1)
"""

from __future__ import annotations

import typing

from repro.hardware.disk import DiskFailedError
from repro.hardware.network import LinkDownError
from repro.metrics.breakdown import CostBreakdown
from repro.storage.checksum import IntegrityError
from repro.txn.manager import TransactionAborted
from repro.txn.locks import LockTimeoutError
from repro.workload.tpcc_txns import DEFAULT_MIX, TRANSACTIONS, TpccContext

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.driver import WorkloadDriver

#: A query is abandoned after this many conflict-retries.
MAX_RETRIES = 8

#: ... or once its retries have burned this much total time, whichever
#: comes first.  Under sustained overload, attempts themselves get slow
#: (lock waits, failover timeouts), and a per-attempt cap alone lets a
#: query camp on the cluster for minutes — the time cap turns that
#: invisible queueing into an explicit, counted "abandoned" outcome.
RETRY_BUDGET_SECONDS = 30.0

#: First retry waits this long; each further retry doubles it ...
BACKOFF_BASE_SECONDS = 0.01
#: ... up to this cap (long enough to ride out a failover window
#: without hammering the master, short enough to notice recovery).
BACKOFF_CAP_SECONDS = 0.5

#: Transient errors worth retrying: aborts/conflicts, lock timeouts,
#: routing races and down nodes (LookupError covers NodeDownError and
#: PartitionUnavailableError), and hardware faults observed mid-query.
#: IntegrityError is retryable too: a checksum mismatch is *surfaced*
#: (never silently read past) and the scrub daemon repairs or fences
#: the row, so a later retry either succeeds or fails fast on an
#: unavailable partition.
RETRYABLE = (TransactionAborted, LockTimeoutError, LookupError,
             DiskFailedError, LinkDownError, IntegrityError)


def backoff_delay(attempt: int) -> float:
    """Exponential backoff for the ``attempt``-th retry (0-based)."""
    return min(BACKOFF_BASE_SECONDS * (2 ** attempt), BACKOFF_CAP_SECONDS)


class OltpClient:
    """One closed-loop client with a fixed submit interval."""

    def __init__(self, client_id: int, ctx: TpccContext,
                 driver: "WorkloadDriver", interval: float,
                 mix: list[tuple[str, float]] | None = None,
                 retry_budget: float = RETRY_BUDGET_SECONDS):
        if interval <= 0:
            raise ValueError("client interval must be positive")
        if retry_budget <= 0:
            raise ValueError("retry budget must be positive")
        self.client_id = client_id
        self.ctx = ctx
        self.driver = driver
        self.interval = interval
        self.mix = mix or DEFAULT_MIX
        self.retry_budget = retry_budget
        self.queries_done = 0
        self.queries_failed = 0
        self.queries_abandoned = 0
        self.retries = 0

    def _pick(self) -> str:
        roll = self.ctx.rng.random()
        acc = 0.0
        for name, weight in self.mix:
            acc += weight
            if roll < acc:
                return name
        return self.mix[-1][0]

    def run(self, until: float):
        """Generator process: the client's closed submit loop."""
        env = self.ctx.cluster.env
        next_submit = env.now
        while env.now < until:
            if next_submit > env.now:
                yield env.timeout(next_submit - env.now)
            if env.now >= until:
                break
            submit_time = env.now
            yield from self._one_query()
            # "the next query is delayed until the subsequent interval"
            next_submit = submit_time + self.interval

    def _one_query(self):
        env = self.ctx.cluster.env
        cluster = self.ctx.cluster
        name = self._pick()
        body = TRANSACTIONS[name]
        start = env.now
        for attempt in range(MAX_RETRIES):
            if attempt and env.now - start > self.retry_budget:
                # Give up early: the retries have already burned the
                # whole budget.  Distinct from exhausting MAX_RETRIES —
                # this is shed load under overload, and the report
                # counts it separately.
                self.queries_abandoned += 1
                self.driver.note_abandoned(name, start, env.now,
                                           attempts=attempt)
                return
            txn = cluster.txns.begin()
            breakdown = CostBreakdown()
            try:
                yield from cluster.network.rpc_delay()  # client -> master
                yield from cluster.master.plan()
                result = yield from body(self.ctx, txn, breakdown)
                yield from cluster.txns.commit(
                    txn, breakdown,
                    immediate_gc=(self.ctx.cc == "locking"),
                )
            except RETRYABLE:
                # Conflict, lock timeout, routing race, down node, or a
                # hardware fault observed mid-query: roll back and retry
                # with exponential backoff — failover may be re-routing
                # the partition in the meantime.
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
                self.driver.note_conflict(name)
                self.retries += 1
                yield env.timeout(backoff_delay(attempt))
                continue
            self.queries_done += 1
            history = cluster.txns.history
            if history is not None:
                # The client-visible acknowledgement: only the *last*
                # attempt's transaction produced the result the client
                # saw; its real-time window is the full query interval.
                history.record_ack(txn.txn_id, name, start, env.now,
                                   attempts=attempt + 1)
            self.driver.note_completion(
                name, start, env.now, breakdown, result,
                attempts=attempt + 1,
            )
            return
        self.queries_failed += 1
        self.driver.note_failure(name, start, env.now, attempts=MAX_RETRIES)
