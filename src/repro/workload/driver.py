"""Workload driver: spawns clients, collects the paper's metrics.

Produces exactly the series the evaluation figures plot: completed
queries (-> qps), per-query response times (-> avg ms), power samples
(-> watts), and energy-per-query; plus aggregated cost breakdowns for
the Fig. 7 component analysis.
"""

from __future__ import annotations

import typing

from repro.cluster.vacuum import VacuumPolicy, VacuumScheduler
from repro.metrics.breakdown import CostBreakdown
from repro.metrics.series import TimeSeries
from repro.workload.client import OltpClient
from repro.workload.tpcc_txns import TpccContext

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

#: Historical name for the daemon handle; the scheduler carries the
#: same ``process`` / ``sweeps`` / ``reclaimed`` / ``stop()`` surface.
VacuumDaemon = VacuumScheduler


def start_vacuum_daemon(cluster: "Cluster", interval: float = 30.0,
                        until: float | None = None) -> VacuumScheduler:
    """Launch the background version GC on every worker's partitions.

    Compatibility front door for :class:`repro.cluster.vacuum
    .VacuumScheduler` in its un-throttled mode: one full sweep per
    ``interval``, exactly one wakeup event per tick (determinism
    goldens fingerprint the event count), final sweep at or before
    ``until`` so a bounded simulation drains completely.  Endurance
    runs construct the scheduler directly with a throttled
    :class:`~repro.cluster.vacuum.VacuumPolicy` instead.
    """
    policy = VacuumPolicy(interval=interval)
    return VacuumScheduler(cluster, policy, until=until).start()


class WorkloadDriver:
    """Runs N closed-loop clients and records the evaluation series."""

    def __init__(self, cluster: "Cluster", ctx: TpccContext,
                 clients: int, client_interval: float,
                 mix: list[tuple[str, float]] | None = None,
                 power_sample_interval: float = 5.0,
                 audit=None,
                 retry_budget: float | None = None):
        if clients < 1:
            raise ValueError("need at least one client")
        self.cluster = cluster
        self.ctx = ctx
        #: Optional operation-history recorder (repro.audit): pass
        #: ``audit=True`` for a default recorder, or a pre-built
        #: ``HistoryRecorder``.  Attaching routes every begin / read /
        #: write / commit / abort through it and makes the meter loop
        #: snapshot partition-table coverage each sample.  Off by
        #: default so perf baselines are untouched.
        self.history = None
        if audit:
            from repro.audit.history import HistoryRecorder

            self.history = audit if isinstance(audit, HistoryRecorder) \
                else HistoryRecorder()
            self.history.attach(cluster)
        from repro.workload.client import RETRY_BUDGET_SECONDS

        self.clients = [
            OltpClient(i, ctx, self, client_interval, mix,
                       retry_budget=retry_budget or RETRY_BUDGET_SECONDS)
            for i in range(clients)
        ]
        self.power_sample_interval = power_sample_interval

        self.completions = TimeSeries("completions")
        self.response_times = TimeSeries("response_ms")
        self.power = TimeSeries("watts")
        self.failures = TimeSeries("failures")
        #: Queries that gave up inside their total-retry-time budget —
        #: shed load made visible, distinct from MAX_RETRIES exhaustion.
        self.abandoned = TimeSeries("abandoned")
        self.conflicts = 0
        self.breakdown_samples: list[tuple[float, CostBreakdown]] = []
        self.results_by_kind: dict[str, int] = {}
        #: Retry accounting: commits that landed on the first attempt
        #: vs. after at least one retry, and total retries spent
        #: (including those of queries that ultimately failed).
        self.first_try_completions = 0
        self.retried_completions = 0
        self.retries_total = 0
        #: Optional hook ``(kind, start, end, breakdown, result,
        #: attempts)`` observed on every completion — experiments use
        #: it to record committed keys for lost-commit verification.
        self.completion_listener: typing.Callable | None = None

    # -- client callbacks -------------------------------------------------

    def note_completion(self, kind: str, start: float, end: float,
                        breakdown: CostBreakdown, result,
                        attempts: int = 1) -> None:
        self.completions.record(end, 1.0)
        self.response_times.record(end, (end - start) * 1000.0)
        self.breakdown_samples.append((end, breakdown))
        self.results_by_kind[kind] = self.results_by_kind.get(kind, 0) + 1
        if attempts <= 1:
            self.first_try_completions += 1
        else:
            self.retried_completions += 1
            self.retries_total += attempts - 1
        if self.completion_listener is not None:
            self.completion_listener(kind, start, end, breakdown, result,
                                     attempts)

    def note_failure(self, kind: str, start: float, end: float,
                     attempts: int = 1) -> None:
        self.failures.record(end, 1.0)
        self.retries_total += max(attempts - 1, 0)

    def note_abandoned(self, kind: str, start: float, end: float,
                       attempts: int = 1) -> None:
        """The client hit its total-retry-time cap and gave up;
        ``attempts`` is how many attempts it had made by then."""
        self.abandoned.record(end, 1.0)
        self.retries_total += max(attempts - 1, 0)

    def note_conflict(self, kind: str) -> None:
        self.conflicts += 1

    # -- run ----------------------------------------------------------------

    def run(self, duration: float):
        """Generator: drive the workload for ``duration`` seconds."""
        env = self.cluster.env
        until = env.now + duration
        procs = [
            env.process(client.run(until), name=f"client-{client.client_id}")
            for client in self.clients
        ]
        meter_proc = env.process(self._meter_loop(until), name="power-meter")
        for proc in procs:
            yield proc
        yield meter_proc

    def _meter_loop(self, until: float):
        meter = self.cluster.meter
        meter.sample()  # reset the checkpoint to now
        if self.history is not None:
            self.history.checkpoint_coverage(
                self.cluster.master.gpt, self.cluster.env.now, "run-start"
            )
        while self.cluster.env.now < until:
            step = min(self.power_sample_interval,
                       until - self.cluster.env.now)
            if step <= 0:
                break
            yield self.cluster.env.timeout(step)
            now, watts = meter.sample()
            self.power.record(now, watts)
            if self.history is not None:
                # Coverage snapshots ride the existing sampling loop so
                # auditing never adds events of its own — mid-move
                # checkpoints land whenever a move spans a sample.
                self.history.checkpoint_coverage(
                    self.cluster.master.gpt, now, "meter"
                )

    # -- aggregates ----------------------------------------------------------

    @property
    def total_completed(self) -> int:
        return len(self.completions)

    @property
    def total_failed(self) -> int:
        return len(self.failures)

    @property
    def total_abandoned(self) -> int:
        return len(self.abandoned)

    def qps_series(self, t0: float, t1: float, width: float):
        return self.completions.bucket_rate(t0, t1, width)

    def response_series(self, t0: float, t1: float, width: float):
        return self.response_times.bucket_mean(t0, t1, width)

    def power_series(self, t0: float, t1: float, width: float):
        return self.power.bucket_mean(t0, t1, width)

    def energy_per_query_series(self, t0: float, t1: float, width: float):
        """Joules per query per bucket: mean watts x width / completions."""
        qps = dict(self.qps_series(t0, t1, width))
        out = []
        for time, watts in self.power_series(t0, t1, width):
            rate = qps.get(time, 0.0)
            if watts is None or rate <= 0:
                out.append((time, None))
            else:
                out.append((time, watts / rate))
        return out

    def retry_summary(self) -> dict[str, int | float]:
        """Commit-path retry accounting: first-try commits reported
        separately from commits that needed retries."""
        completed = self.first_try_completions + self.retried_completions
        return {
            "first_try_completions": self.first_try_completions,
            "retried_completions": self.retried_completions,
            "retries_total": self.retries_total,
            "exhausted_failures": self.total_failed,
            "abandoned_requests": self.total_abandoned,
            "retried_fraction": (
                self.retried_completions / completed if completed else 0.0
            ),
        }

    def mean_breakdown(self, t0: float | None = None,
                       t1: float | None = None) -> CostBreakdown:
        """Average per-query component times over a window (Fig. 7)."""
        chosen = [
            b for t, b in self.breakdown_samples
            if (t0 is None or t >= t0) and (t1 is None or t < t1)
        ]
        mean = CostBreakdown()
        if not chosen:
            return mean
        for b in chosen:
            mean.merge(b)
        return mean.scaled(1.0 / len(chosen))
