"""Deterministic TPC-C data generation and loading.

Two load paths:

* ``fast=True`` (default): rows are materialised directly into segments
  as committed versions, outside the simulation clock — database
  loading is not part of any measurement window in the paper.
* ``fast=False``: rows go through the full transactional insert path
  (useful for small integration tests of the write machinery).
"""

from __future__ import annotations

import random
import string
import typing

from repro.index.global_table import PartitionLocation
from repro.index.partition_tree import KeyRange
from repro.storage.record import RecordVersion
from repro.storage.segment import SegmentFullError
from repro.workload.tpcc_schema import (
    TPCC_TABLES,
    TpccConfig,
    WAREHOUSE_PARTITIONED,
    tables_for,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.catalog import Partition
    from repro.cluster.cluster import Cluster
    from repro.cluster.worker import WorkerNode

#: Loader pseudo-transaction: id 0, committed at timestamp 1.
LOAD_TXN_ID = 0
LOAD_COMMIT_TS = 1


class TpccGenerator:
    """Seeded row generator following the TPC-C population rules
    (NURand with fixed C constants, random alphanumeric fill)."""

    def __init__(self, config: TpccConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        # Per-spec the C constant is random at load; fixed for determinism.
        self.c_last = 123
        self.c_id = 259
        self.i_id = 7911

    # -- randomness helpers ---------------------------------------------------

    def nurand(self, a: int, x: int, y: int, c: int) -> int:
        """Non-uniform random, per TPC-C clause 2.1.6."""
        r = self.rng
        return ((r.randint(0, a) | r.randint(x, y)) + c) % (y - x + 1) + x

    def rand_str(self, low: int, high: int) -> str:
        n = self.rng.randint(low, high)
        return "".join(self.rng.choices(string.ascii_lowercase, k=n))

    def rand_zip(self) -> str:
        return "%04d11111" % self.rng.randint(0, 9999)

    def _pad(self) -> tuple:
        """The optional blob pad cell for customer/stock rows."""
        return ("",) if self.config.pad_blob_bytes > 0 else ()

    # -- row streams ----------------------------------------------------------

    def warehouse_rows(self):
        for w in range(1, self.config.warehouses + 1):
            yield (w, self.rand_str(6, 10), self.rand_str(10, 20),
                   self.rand_str(10, 20), "st", self.rand_zip(),
                   self.rng.uniform(0.0, 0.2), 300000.0)

    def district_rows(self):
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                yield (w, d, self.rand_str(6, 10), self.rand_str(10, 20),
                       self.rand_str(10, 20), "st", self.rand_zip(),
                       self.rng.uniform(0.0, 0.2), 30000.0,
                       self.config.orders_per_district + 1)

    def customer_rows(self):
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                for c in range(1, self.config.customers_per_district + 1):
                    yield (w, d, c, self.rand_str(8, 16), "OE",
                           "name-%04d" % c, self.rand_str(10, 20),
                           self.rand_str(10, 20), "st", self.rand_zip(),
                           "%016d" % self.rng.randint(0, 10**15),
                           "2014-01-01",
                           "GC" if self.rng.random() < 0.9 else "BC",
                           50000.0, self.rng.uniform(0.0, 0.5), -10.0,
                           10.0, 1, 0, self.rand_str(100, 250),
                           *self._pad())

    def history_rows(self):
        h_id = 0
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                for c in range(1, self.config.customers_per_district + 1):
                    h_id += 1
                    yield (w, h_id, w, d, c, d, "2014-01-01", 10.0,
                           self.rand_str(12, 24))

    def item_rows(self):
        for i in range(1, self.config.items + 1):
            yield (i, self.rng.randint(1, 10000), "item-%06d" % i,
                   self.rng.uniform(1.0, 100.0), self.rand_str(26, 50))

    def stock_rows(self):
        for w in range(1, self.config.warehouses + 1):
            for i in range(1, self.config.items + 1):
                yield (w, i, self.rng.randint(10, 100),
                       self.rand_str(24, 24), 0, 0, 0, self.rand_str(26, 50),
                       *self._pad())

    def orders_rows(self):
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                customers = list(
                    range(1, self.config.customers_per_district + 1)
                )
                self.rng.shuffle(customers)
                for o in range(1, self.config.orders_per_district + 1):
                    c = customers[(o - 1) % len(customers)]
                    yield (w, d, o, c, "2014-01-01",
                           self.rng.randint(1, 10),
                           self.config.order_lines_per_order, 1)

    def order_line_rows(self):
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                for o in range(1, self.config.orders_per_district + 1):
                    for ol in range(1, self.config.order_lines_per_order + 1):
                        yield (w, d, o, ol,
                               self.rng.randint(1, self.config.items), w,
                               "2014-01-01", 5,
                               self.rng.uniform(0.1, 100.0),
                               self.rand_str(24, 24))

    def new_order_rows(self):
        """The most recent third of orders are still undelivered."""
        start = max(1, self.config.orders_per_district * 2 // 3)
        for w in range(1, self.config.warehouses + 1):
            for d in range(1, self.config.districts_per_warehouse + 1):
                for o in range(start, self.config.orders_per_district + 1):
                    yield (w, d, o)

    def rows_for(self, table: str):
        streams = {
            "warehouse": self.warehouse_rows,
            "district": self.district_rows,
            "customer": self.customer_rows,
            "history": self.history_rows,
            "item": self.item_rows,
            "stock": self.stock_rows,
            "orders": self.orders_rows,
            "order_line": self.order_line_rows,
            "new_order": self.new_order_rows,
        }
        return streams[table]()


def warehouse_ranges(config: TpccConfig,
                     owners: typing.Sequence["WorkerNode"],
                     single_column: bool) -> list[tuple[KeyRange, "WorkerNode"]]:
    """Contiguous warehouse ranges, one per owner node."""
    n = len(owners)
    per_owner = config.warehouses / n
    out = []
    for i, owner in enumerate(owners):
        w_lo = 1 + round(i * per_owner)
        w_hi = 1 + round((i + 1) * per_owner)
        if w_lo >= w_hi:
            continue
        if single_column:
            low = None if i == 0 else w_lo
            high = None if i == n - 1 else w_hi
        else:
            low = None if i == 0 else (w_lo,)
            high = None if i == n - 1 else (w_hi,)
        out.append((KeyRange(low, high), owner))
    return out


def fast_insert(worker: "WorkerNode", partition: "Partition",
                values: tuple) -> None:
    """Materialise one committed row directly (no simulation events)."""
    version = RecordVersion.make(partition.schema, values, LOAD_TXN_ID)
    version.created_ts = LOAD_COMMIT_TS
    target = partition.ensure_segment_for(version.key)
    worker.ensure_hosted(target)
    try:
        target.insert_version(version)
    except SegmentFullError:
        target = partition.split_full_segment(target)
        worker.ensure_hosted(target)
        target.insert_version(version)


def load_tpcc(cluster: "Cluster", config: TpccConfig,
              owners: typing.Sequence["WorkerNode"] | None = None,
              tables: typing.Sequence[str] | None = None,
              fast: bool = True,
              segment_max_pages: int | None = None):
    """Create and populate the TPC-C tables.

    ``owners`` are the nodes that initially hold the data (the paper's
    Fig. 6 starts "with two nodes, hosting the data"); warehouse ranges
    are split contiguously across them.  The item catalog lives on the
    first owner.  Returns ``{table: [partitions]}``.

    With ``fast=False`` this is a generator that must be run on the
    simulation (rows go through transactional inserts); with
    ``fast=True`` it executes immediately and returns the mapping.
    """
    owners = list(owners) if owners else [cluster.master.worker]
    tables = list(tables) if tables else list(TPCC_TABLES)
    generator = TpccGenerator(config)
    master = cluster.master

    created: dict[str, list] = {}
    schemas = tables_for(config)
    for table in tables:
        schema = schemas[table]
        table_def = cluster.catalog.define_table(table, schema)
        created[table] = []
        if table == "item" or table not in WAREHOUSE_PARTITIONED:
            assignments = [(KeyRange(None, None), owners[0])]
        else:
            single = len(schema.key) == 1
            assignments = warehouse_ranges(config, owners, single)
        for key_range, owner in assignments:
            partition = cluster.catalog.new_partition(
                table_def, owner.node_id, segment_max_pages=segment_max_pages
            )
            partition.bounds = key_range
            owner.add_partition(partition)
            master.gpt.register(
                table, key_range,
                PartitionLocation(partition.partition_id, owner.node_id),
            )
            if table in WAREHOUSE_PARTITIONED:
                _seed_warehouse_segments(config, partition, key_range,
                                         single=len(schema.key) == 1)
            created[table].append(partition)

    if fast:
        _fast_fill(cluster, generator, created, tables)
        _create_secondary_indexes(config, created)
        return created
    return _slow_fill(cluster, generator, created, tables, config=config)


def _seed_warehouse_segments(config: TpccConfig, partition, key_range: KeyRange,
                             single: bool) -> None:
    """Pre-create one (initial) segment per warehouse.

    Aligning segment boundaries to warehouses makes a fractional
    migration warehouse-granular across *every* table — the same
    key-contiguity a full-scale deployment gets for free from having
    many segments per warehouse.  Overflowing warehouses still split
    into further segments on demand.
    """
    for w in range(1, config.warehouses + 1):
        low = w if single else (w,)
        high = w + 1 if single else (w + 1,)
        if not key_range.contains(low):
            continue
        partition.new_segment(KeyRange(low, high))


def _fast_fill(cluster, generator, created, tables):
    schemas = tables_for(generator.config)
    for table in tables:
        for values in generator.rows_for(table):
            key = schemas[table].key_of(values)
            location = cluster.master.gpt.locate(table, key)
            worker = cluster.worker(location.node_id)
            partition = worker.partitions[location.partition_id]
            fast_insert(worker, partition, tuple(values))


def _create_secondary_indexes(config: TpccConfig, created) -> None:
    if config.index_customer_name and "customer" in created:
        for partition in created["customer"]:
            partition.create_secondary_index("customer_by_name", ["c_last"])


def _slow_fill(cluster, generator, created, tables, batch: int = 100,
               config: TpccConfig | None = None):
    """Generator: transactional load through the full write path."""
    master = cluster.master
    for table in tables:
        rows = list(generator.rows_for(table))
        for start in range(0, len(rows), batch):
            txn = cluster.txns.begin()
            for values in rows[start:start + batch]:
                yield from master.insert(table, tuple(values), txn)
            yield from cluster.txns.commit(txn)
    if config is not None:
        _create_secondary_indexes(config, created)
    return created
