"""TPC-C schema: the nine tables, composite keys leading with the
warehouse id so range partitioning by warehouse works uniformly.

Column widths are trimmed against the spec (we model byte sizes, not
payload semantics), but the relative row sizes and table cardinalities
follow TPC-C so access skew and storage ratios carry over.
"""

from __future__ import annotations

import dataclasses

from repro.storage.record import Column, Schema


@dataclasses.dataclass(frozen=True)
class TpccConfig:
    """Scaled-down TPC-C sizing (spec values in comments)."""

    warehouses: int = 2              # paper: 1,000
    districts_per_warehouse: int = 10
    customers_per_district: int = 30  # spec: 3,000
    items: int = 200                  # spec: 100,000
    orders_per_district: int = 30     # spec: 3,000
    order_lines_per_order: int = 5    # spec: 5-15 (avg 10)
    #: Fixed-width blob appended to customer and stock rows — the
    #: scaling device that gives the *hot* working set paper-scale
    #: bytes (SF-1000 customer/stock are tens of GB against 2 GB DRAM)
    #: without paper-scale row counts.  0 disables it.
    pad_blob_bytes: int = 0
    #: Maintain a customer last-name secondary index and let Payment
    #: look customers up by name (TPC-C spec: 60% of payments).
    index_customer_name: bool = False
    seed: int = 42

    def __post_init__(self):
        if self.warehouses < 1 or self.districts_per_warehouse < 1:
            raise ValueError("need at least one warehouse and district")
        if self.customers_per_district < 1 or self.items < 1:
            raise ValueError("need customers and items")
        if self.pad_blob_bytes < 0:
            raise ValueError("pad_blob_bytes must be >= 0")


def _schema(columns, key):
    return Schema(columns, key)


TPCC_TABLES: dict[str, Schema] = {
    "warehouse": _schema(
        [Column("w_id"), Column("w_name", "str", width=10),
         Column("w_street", "str", width=20), Column("w_city", "str", width=20),
         Column("w_state", "str", width=2), Column("w_zip", "str", width=9),
         Column("w_tax", "float"), Column("w_ytd", "float")],
        key=("w_id",),
    ),
    "district": _schema(
        [Column("d_w_id"), Column("d_id"),
         Column("d_name", "str", width=10), Column("d_street", "str", width=20),
         Column("d_city", "str", width=20), Column("d_state", "str", width=2),
         Column("d_zip", "str", width=9), Column("d_tax", "float"),
         Column("d_ytd", "float"), Column("d_next_o_id")],
        key=("d_w_id", "d_id"),
    ),
    "customer": _schema(
        [Column("c_w_id"), Column("c_d_id"), Column("c_id"),
         Column("c_first", "str", width=16), Column("c_middle", "str", width=2),
         Column("c_last", "str", width=16), Column("c_street", "str", width=20),
         Column("c_city", "str", width=20), Column("c_state", "str", width=2),
         Column("c_zip", "str", width=9), Column("c_phone", "str", width=16),
         Column("c_since", "str", width=10), Column("c_credit", "str", width=2),
         Column("c_credit_lim", "float"), Column("c_discount", "float"),
         Column("c_balance", "float"), Column("c_ytd_payment", "float"),
         Column("c_payment_cnt"), Column("c_delivery_cnt"),
         Column("c_data", "str", width=250)],  # spec: 500
        key=("c_w_id", "c_d_id", "c_id"),
    ),
    "history": _schema(
        [Column("h_w_id"), Column("h_id"),
         Column("h_c_w_id"), Column("h_c_d_id"), Column("h_c_id"),
         Column("h_d_id"), Column("h_date", "str", width=10),
         Column("h_amount", "float"), Column("h_data", "str", width=24)],
        key=("h_w_id", "h_id"),
    ),
    "new_order": _schema(
        [Column("no_w_id"), Column("no_d_id"), Column("no_o_id")],
        key=("no_w_id", "no_d_id", "no_o_id"),
    ),
    "orders": _schema(
        [Column("o_w_id"), Column("o_d_id"), Column("o_id"),
         Column("o_c_id"), Column("o_entry_d", "str", width=10),
         Column("o_carrier_id"), Column("o_ol_cnt"), Column("o_all_local")],
        key=("o_w_id", "o_d_id", "o_id"),
    ),
    "order_line": _schema(
        [Column("ol_w_id"), Column("ol_d_id"), Column("ol_o_id"),
         Column("ol_number"), Column("ol_i_id"), Column("ol_supply_w_id"),
         Column("ol_delivery_d", "str", width=10), Column("ol_quantity"),
         Column("ol_amount", "float"), Column("ol_dist_info", "str", width=24)],
        key=("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"),
    ),
    "item": _schema(
        [Column("i_id"), Column("i_im_id"), Column("i_name", "str", width=24),
         Column("i_price", "float"), Column("i_data", "str", width=50)],
        key=("i_id",),
    ),
    "stock": _schema(
        [Column("s_w_id"), Column("s_i_id"), Column("s_quantity"),
         Column("s_dist_01", "str", width=24), Column("s_ytd"),
         Column("s_order_cnt"), Column("s_remote_cnt"),
         Column("s_data", "str", width=50)],
        key=("s_w_id", "s_i_id"),
    ),
}

#: Tables partitioned by warehouse (everything except the item catalog).
WAREHOUSE_PARTITIONED = [t for t in TPCC_TABLES if t != "item"]

#: Tables that receive the optional pad blob (the hot, big ones).
PADDED_TABLES = ("customer", "stock")


def table_schema(name: str) -> Schema:
    if name not in TPCC_TABLES:
        raise KeyError(f"unknown TPC-C table {name!r}")
    return TPCC_TABLES[name]


def tables_for(config: TpccConfig) -> dict[str, Schema]:
    """The nine schemas, with the pad blob applied per ``config``."""
    if config.pad_blob_bytes <= 0:
        return dict(TPCC_TABLES)
    out = dict(TPCC_TABLES)
    for name in PADDED_TABLES:
        base = TPCC_TABLES[name]
        out[name] = Schema(
            list(base.columns) + [
                Column("pad", "blob", width=config.pad_blob_bytes)
            ],
            key=base.key,
        )
    return out
