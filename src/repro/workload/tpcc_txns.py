"""The five TPC-C transactions, adapted per the paper (Sect. 5.1):
no emulated user interaction, each executes in "a single run".

Each transaction is a simulation generator over the master's routed
access API and returns a small result summary.  Conflicts raise
:class:`~repro.txn.manager.TransactionAborted`; the client retries.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.metrics.breakdown import CostBreakdown
from repro.workload.tpcc_schema import TpccConfig

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.txn.manager import Transaction

#: History rows written at runtime start above any loader-assigned id.
HISTORY_ID_BASE = 1_000_000_000

#: Transaction mix per the TPC-C guideline weights (the paper deviates
#: from the spec's exact mix; this is the conventional approximation).
DEFAULT_MIX: list[tuple[str, float]] = [
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
]


@dataclasses.dataclass
class TpccContext:
    """Workload-side state shared by all clients."""

    cluster: "Cluster"
    config: TpccConfig
    cc: str = "mvcc"
    rng: random.Random = dataclasses.field(default_factory=lambda: random.Random(7))

    def random_warehouse(self) -> int:
        return self.rng.randint(1, self.config.warehouses)

    def random_district(self) -> int:
        return self.rng.randint(1, self.config.districts_per_warehouse)

    def random_customer(self) -> int:
        return self._nurand(1023, 1, self.config.customers_per_district, 259)

    def random_item(self) -> int:
        return self._nurand(8191, 1, self.config.items, 7911)

    def _nurand(self, a: int, x: int, y: int, c: int) -> int:
        if y <= x:
            return x
        r = self.rng
        return ((r.randint(0, a) | r.randint(x, y)) + c) % (y - x + 1) + x


def _require(row, what: str):
    if row is None:
        raise LookupError(f"tpcc: missing {what}")
    return row


def new_order(ctx: TpccContext, txn: "Transaction",
              breakdown: CostBreakdown | None = None, priority: int = 0):
    """NewOrder: the write-heavy backbone of the mix."""
    master = ctx.cluster.master
    cc = ctx.cc
    w = ctx.random_warehouse()
    d = ctx.random_district()
    c = ctx.random_customer()
    ol_cnt = ctx.rng.randint(5, 15)

    warehouse = _require(
        (yield from master.read("warehouse", w, txn, breakdown, cc, priority)),
        f"warehouse {w}",
    )
    district = _require(
        (yield from master.read("district", (w, d), txn, breakdown, cc, priority)),
        f"district {(w, d)}",
    )
    o_id = district[9]  # d_next_o_id
    updated = district[:9] + (o_id + 1,)
    yield from master.update("district", (w, d), updated, txn,
                             breakdown, cc, priority)
    customer = _require(
        (yield from master.read("customer", (w, d, c), txn, breakdown, cc,
                                priority)),
        f"customer {(w, d, c)}",
    )

    total = 0.0
    for number in range(1, ol_cnt + 1):
        i = ctx.random_item()
        item = yield from master.read("item", i, txn, breakdown, cc, priority)
        if item is None:
            continue  # spec: 1% unused item -> rollback; we tolerate
        stock = yield from master.read("stock", (w, i), txn, breakdown, cc,
                                       priority)
        if stock is not None:
            quantity = stock[2]
            new_quantity = quantity - 5 if quantity >= 15 else quantity + 86
            new_stock = (stock[:2] + (new_quantity,) + stock[3:4]
                         + (stock[4] + 5, stock[5] + 1) + stock[6:])
            yield from master.update("stock", (w, i), new_stock, txn,
                                     breakdown, cc, priority)
        amount = 5 * item[3]
        total += amount
        yield from master.insert(
            "order_line",
            (w, d, o_id, number, i, w, "", 5, amount, "x" * 24),
            txn, breakdown, cc, priority,
        )

    yield from master.insert(
        "orders", (w, d, o_id, c, "2015-01-01", 0, ol_cnt, 1),
        txn, breakdown, cc, priority,
    )
    yield from master.insert(
        "new_order", (w, d, o_id), txn, breakdown, cc, priority,
    )
    total *= (1 + warehouse[6]) * (1 - customer[14])
    return {"kind": "new_order", "w": w, "d": d, "o_id": o_id, "total": total}


def payment(ctx: TpccContext, txn: "Transaction",
            breakdown: CostBreakdown | None = None, priority: int = 0):
    """Payment: short read-modify-write plus a history append."""
    master = ctx.cluster.master
    cc = ctx.cc
    w = ctx.random_warehouse()
    d = ctx.random_district()
    c = ctx.random_customer()
    amount = ctx.rng.uniform(1.0, 5000.0)

    warehouse = _require(
        (yield from master.read("warehouse", w, txn, breakdown, cc, priority)),
        f"warehouse {w}",
    )
    yield from master.update(
        "warehouse", w, warehouse[:7] + (warehouse[7] + amount,),
        txn, breakdown, cc, priority,
    )
    by_name = (
        ctx.config.index_customer_name and ctx.rng.random() < 0.6
    )
    district = _require(
        (yield from master.read("district", (w, d), txn, breakdown, cc,
                                priority)),
        f"district {(w, d)}",
    )
    yield from master.update(
        "district", (w, d),
        district[:8] + (district[8] + amount, district[9]),
        txn, breakdown, cc, priority,
    )
    if by_name:
        # Spec clause 2.5.2.2: select by last name, take the middle
        # match (ordered by first name; our ids serve as the order).
        matches = yield from master.read_by_secondary(
            "customer", (w, d, 1), "customer_by_name", "name-%04d" % c,
            txn, breakdown, cc, priority,
        )
        matches = [m for m in matches if m[0] == w and m[1] == d]
        customer = _require(
            matches[len(matches) // 2] if matches else None,
            f"customer named name-{c:04d} in {(w, d)}",
        )
        c = customer[2]
    else:
        customer = _require(
            (yield from master.read("customer", (w, d, c), txn, breakdown, cc,
                                    priority)),
            f"customer {(w, d, c)}",
        )
    new_customer = (
        customer[:15]
        + (customer[15] - amount, customer[16] + amount, customer[17] + 1)
        + customer[18:]
    )
    yield from master.update("customer", (w, d, c), new_customer, txn,
                             breakdown, cc, priority)
    # txn ids are unique cluster-wide: a natural history key.  Offset
    # past any loader-assigned history ids.
    h_id = HISTORY_ID_BASE + txn.txn_id
    yield from master.insert(
        "history", (w, h_id, w, d, c, d, "2015-01-01", amount, "pay"),
        txn, breakdown, cc, priority,
    )
    return {"kind": "payment", "amount": amount}


def order_status(ctx: TpccContext, txn: "Transaction",
                 breakdown: CostBreakdown | None = None, priority: int = 0):
    """OrderStatus: read-only — a customer's most recent order.

    With the name index enabled, 60% of lookups go by last name (spec
    clause 2.6.1.2), like Payment.
    """
    master = ctx.cluster.master
    cc = ctx.cc
    w = ctx.random_warehouse()
    d = ctx.random_district()
    c = ctx.random_customer()

    if ctx.config.index_customer_name and ctx.rng.random() < 0.6:
        matches = yield from master.read_by_secondary(
            "customer", (w, d, 1), "customer_by_name", "name-%04d" % c,
            txn, breakdown, cc, priority,
        )
        matches = [m for m in matches if m[0] == w and m[1] == d]
        customer = _require(
            matches[len(matches) // 2] if matches else None,
            f"customer named name-{c:04d} in {(w, d)}",
        )
        c = customer[2]
    else:
        _require(
            (yield from master.read("customer", (w, d, c), txn, breakdown,
                                    cc, priority)),
            f"customer {(w, d, c)}",
        )
    district = _require(
        (yield from master.read("district", (w, d), txn, breakdown, cc,
                                priority)),
        f"district {(w, d)}",
    )
    next_o_id = district[9]
    # Adapted: walk back from the newest order until one is found.
    order = None
    for o_id in range(next_o_id - 1, max(next_o_id - 6, 0), -1):
        order = yield from master.read("orders", (w, d, o_id), txn,
                                       breakdown, cc, priority)
        if order is not None:
            break
    lines = []
    if order is not None:
        lines = yield from master.read_range(
            "order_line", (w, d, order[2], 0), (w, d, order[2] + 1, 0),
            txn, breakdown, cc, priority,
        )
    return {"kind": "order_status", "lines": len(lines)}


def delivery(ctx: TpccContext, txn: "Transaction",
             breakdown: CostBreakdown | None = None, priority: int = 0):
    """Delivery: consume the oldest undelivered order of one district."""
    master = ctx.cluster.master
    cc = ctx.cc
    w = ctx.random_warehouse()
    d = ctx.random_district()

    pending = yield from master.read_range(
        "new_order", (w, d, 0), (w, d + 1, 0), txn, breakdown, cc, priority,
        limit=1,
    )
    if not pending:
        return {"kind": "delivery", "delivered": 0}
    o_id = pending[0][2]
    yield from master.delete("new_order", (w, d, o_id), txn, breakdown, cc,
                             priority)
    order = yield from master.read("orders", (w, d, o_id), txn, breakdown,
                                   cc, priority)
    if order is None:
        return {"kind": "delivery", "delivered": 0}
    carrier = ctx.rng.randint(1, 10)
    yield from master.update(
        "orders", (w, d, o_id),
        order[:5] + (carrier,) + order[6:],
        txn, breakdown, cc, priority,
    )
    lines = yield from master.read_range(
        "order_line", (w, d, o_id, 0), (w, d, o_id + 1, 0),
        txn, breakdown, cc, priority,
    )
    total = sum(line[8] for line in lines)
    c = order[3]
    customer = yield from master.read("customer", (w, d, c), txn, breakdown,
                                      cc, priority)
    if customer is not None:
        new_customer = (
            customer[:15]
            + (customer[15] + total, customer[16], customer[17])
            + (customer[18] + 1,)
            + customer[19:]
        )
        yield from master.update("customer", (w, d, c), new_customer, txn,
                                 breakdown, cc, priority)
    return {"kind": "delivery", "delivered": 1, "o_id": o_id}


def stock_level(ctx: TpccContext, txn: "Transaction",
                breakdown: CostBreakdown | None = None, priority: int = 0):
    """StockLevel: read-heavy scan over recent order lines + stock."""
    master = ctx.cluster.master
    cc = ctx.cc
    w = ctx.random_warehouse()
    d = ctx.random_district()
    threshold = ctx.rng.randint(10, 20)

    district = _require(
        (yield from master.read("district", (w, d), txn, breakdown, cc,
                                priority)),
        f"district {(w, d)}",
    )
    next_o_id = district[9]
    lines = yield from master.read_range(
        "order_line",
        (w, d, max(next_o_id - 20, 0), 0), (w, d, next_o_id, 0),
        txn, breakdown, cc, priority,
    )
    items = {line[4] for line in lines}
    low = 0
    for i in sorted(items):
        stock = yield from master.read("stock", (w, i), txn, breakdown, cc,
                                       priority)
        if stock is not None and stock[2] < threshold:
            low += 1
    return {"kind": "stock_level", "low": low, "checked": len(items)}


TRANSACTIONS: dict[str, typing.Callable] = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}
