"""Live-cluster audit integration: the recorder hooks capture a real
workload's operations, and the checkers certify the run clean."""

import pytest

from repro import Cluster, Environment
from repro.audit import HistoryRecorder, History, audit_history
from repro.audit.history import ACK, BEGIN, COMMIT, READ, WRITE
from repro.metrics.report import render_audit_report, render_audit_summary
from repro.storage import Column, Schema
from repro.workload import TpccConfig, TpccContext, WorkloadDriver, load_tpcc

SCHEMA = Schema([Column("id"), Column("v", "str", width=24)], key=("id",))


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(
        env, node_count=3, initially_active=2,
        buffer_pages_per_node=2048, segment_max_pages=16, page_bytes=2048,
    )
    config = TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=50, orders_per_district=10, order_lines_per_order=3,
    )
    load_tpcc(cluster, config, owners=[cluster.workers[0], cluster.workers[1]])
    ctx = TpccContext(cluster, config)
    return env, cluster, ctx


def test_audited_workload_is_clean_and_complete(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5,
                            audit=True)
    assert cluster.txns.history is driver.history
    env.run(until=env.process(driver.run(20.0)))
    recorder = driver.history
    stats = recorder.stats()
    # Every lifecycle hook fired: the mix always begins/commits, reads
    # rows, writes rows, and acks completed queries.
    for kind in (BEGIN, READ, WRITE, COMMIT, ACK):
        assert stats[kind] > 0, f"no {kind} operations recorded"
    # The client acks exactly the completed queries, and the meter loop
    # snapshotted coverage at run-start plus every power sample.
    assert stats[ACK] == driver.total_completed
    assert stats[COMMIT] == cluster.txns.committed_count
    assert stats["coverage_checkpoints"] >= 2
    assert stats["ops_dropped"] == 0

    report = audit_history(recorder, cluster)
    assert report.ok, report.descriptions()
    # Renderers accept both the clean and the populated shape.
    assert "CLEAN" in render_audit_report(report)
    assert "CLEAN" in render_audit_summary("test", [], report.stats)
    assert "ANOMALY" in render_audit_summary("test", ["G0: fake"],
                                             report.stats)


def test_audit_off_records_nothing(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=2, client_interval=0.5)
    assert driver.history is None
    assert cluster.txns.history is None
    env.run(until=env.process(driver.run(5.0)))
    assert cluster.txns.history is None


def test_recorder_ring_overflow_is_accounted():
    env = Environment()
    cluster = Cluster(env, node_count=1, initially_active=1,
                      segment_max_pages=16, page_bytes=2048)
    owner = cluster.workers[0]
    cluster.master.create_table("kv", SCHEMA, owner=owner)
    recorder = HistoryRecorder(capacity=16).attach(cluster)

    def work():
        for i in range(40):
            txn = cluster.txns.begin()
            yield from cluster.master.insert("kv", (i, f"v{i}"), txn)
            yield from cluster.txns.commit(txn)

    env.run(until=env.process(work()))
    stats = recorder.stats()
    assert len(recorder) == 16
    assert stats["ops_recorded"] == 40 * 3
    assert stats["ops_dropped"] == 40 * 3 - 16
    # A truncated history still audits (conservatively) clean.
    assert audit_history(recorder).ok


def test_recorder_validates_capacity():
    with pytest.raises(ValueError):
        HistoryRecorder(capacity=0)


def test_manual_transactions_record_prev_versions():
    """Updates and deletes capture the superseded version's identity —
    the raw material for the lost-update and G0 checkers."""
    env = Environment()
    cluster = Cluster(env, node_count=1, initially_active=1,
                      segment_max_pages=16, page_bytes=2048)
    owner = cluster.workers[0]
    cluster.master.create_table("kv", SCHEMA, owner=owner)
    recorder = HistoryRecorder().attach(cluster)

    def work():
        t1 = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "a"), t1)
        yield from cluster.txns.commit(t1)
        t2 = cluster.txns.begin()
        yield from cluster.master.update("kv", 1, (1, "b"), t2)
        yield from cluster.txns.commit(t2)
        t3 = cluster.txns.begin()
        yield from cluster.master.delete("kv", 1, t3)
        yield from cluster.txns.commit(t3)
        t4 = cluster.txns.begin()
        row = yield from cluster.master.read("kv", 1, t4)
        assert row is None
        yield from cluster.txns.commit(t4)

    env.run(until=env.process(work()))
    history = History.from_recorder(recorder)
    writes = history.writes
    assert [op.subkind for op in writes] == ["insert", "update", "delete"]
    insert, update, delete = writes
    assert insert.prev_writer is None
    assert update.prev_writer == insert.txn_id
    assert update.prev_ts == history.commit_ts[insert.txn_id]
    assert delete.prev_writer == update.txn_id
    # The post-delete read miss is recorded and judged consistent.
    assert any(op.value is None for op in history.reads)
    recorder.checkpoint_coverage(cluster.master.gpt, env.now, "end")
    assert audit_history(recorder, cluster).ok
