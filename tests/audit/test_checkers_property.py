"""Property tests for the isolation checkers: clean serial histories
pass every checker, and each planted anomaly class is flagged by
exactly the checker that owns it."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.checkers import (
    History,
    check_aborted_reads,
    check_intermediate_reads,
    check_lost_updates,
    check_partition_coverage,
    check_snapshot_reads,
    check_write_cycles,
)
from repro.audit.history import CoverageCheckpoint, CoverageEntry, Op

ADYA_CHECKERS = {
    "G1a": check_aborted_reads,
    "G1b": check_intermediate_reads,
    "lost-update": check_lost_updates,
    "G0": check_write_cycles,
}


def all_anomalies(history: History):
    out = []
    for checker in ADYA_CHECKERS.values():
        out += checker(history)
    out += check_snapshot_reads(history)
    return out


# -- clean serial histories -------------------------------------------------

@st.composite
def serial_history(draw):
    """A strictly serial execution over a small keyspace: each
    transaction runs alone, reads the latest committed state, writes
    through it, then commits or aborts.  By construction it exhibits
    no anomaly of any class."""
    n_txns = draw(st.integers(min_value=2, max_value=10))
    n_keys = draw(st.integers(min_value=1, max_value=4))
    keys = list(range(n_keys))
    #: key -> (writer, commit_ts, value) of the latest committed create;
    #: absent = never written (or deleted).
    store: dict[int, tuple[int, int, tuple]] = {}
    ops: list[Op] = []
    ts = 10
    t = 0.0
    for txn_id in range(1, n_txns + 1):
        begin = ts
        ts += 1
        ops.append(Op.begin(txn_id, begin, at=t))
        aborts = draw(st.booleans()) and draw(st.booleans())  # ~25%
        pending: dict[int, tuple | None] = {}
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            key = draw(st.sampled_from(keys))
            action = draw(st.sampled_from(["read", "write", "delete"]))
            t += 0.1
            if action == "read":
                if key in pending:
                    value = pending[key]
                    ops.append(Op.read(txn_id, "t", key, value,
                                       writer_txn=txn_id, version_ts=None,
                                       at=t))
                elif key in store:
                    writer, w_ts, value = store[key]
                    ops.append(Op.read(txn_id, "t", key, value,
                                       writer_txn=writer, version_ts=w_ts,
                                       at=t))
                else:
                    ops.append(Op.read(txn_id, "t", key, None, at=t))
            elif key in pending:
                # At most one write site per key per transaction keeps
                # the history free of (legitimate) intermediate values.
                continue
            elif action == "delete":
                if key in store:
                    writer, w_ts, _value = store[key]
                    ops.append(Op.write(txn_id, "delete", "t", key, None,
                                        prev_writer=writer, prev_ts=w_ts,
                                        at=t))
                    pending[key] = None
            else:
                value = (key, f"t{txn_id}")
                if key in store:
                    writer, w_ts, _old = store[key]
                    ops.append(Op.write(txn_id, "update", "t", key, value,
                                        prev_writer=writer, prev_ts=w_ts,
                                        at=t))
                else:
                    ops.append(Op.write(txn_id, "insert", "t", key, value,
                                        at=t))
                pending[key] = value
        t += 0.1
        if aborts:
            ops.append(Op.abort(txn_id, at=t))
        else:
            commit_ts = ts
            ts += 1
            ops.append(Op.commit(txn_id, commit_ts, at=t))
            for key, value in pending.items():
                if value is None:
                    store.pop(key, None)
                else:
                    store[key] = (txn_id, commit_ts, value)
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=serial_history())
def test_property_serial_histories_are_clean(ops):
    history = History(ops)
    assert all_anomalies(history) == []


# -- planted anomalies ------------------------------------------------------

def assert_only(history: History, kind: str):
    """The planted anomaly is flagged with ``kind``, and no checker
    reports any *other* kind (one fault, one diagnosis)."""
    found = all_anomalies(history)
    kinds = {a.kind for a in found}
    assert kind in kinds, f"planted {kind} not detected"
    assert kinds == {kind}, f"unexpected extra anomalies: {kinds}"


@settings(max_examples=30, deadline=None)
@given(ops=serial_history(), reader=st.integers(min_value=1, max_value=10))
def test_property_planted_lost_update_detected(ops, reader):
    history = History(ops)
    # Find a committed update site to duplicate under a fresh txn: both
    # overwrite the same version, the signature lost update.
    target = next((op for op in history.writes
                   if op.prev_writer is not None
                   and history.committed(op.txn_id)), None)
    if target is None:
        return  # this draw produced no committed overwrite: vacuous
    thief = 9000
    ts = max(list(history.commit_ts.values())
             + list(history.begin_ts.values())) + 1
    planted = ops + [
        Op.begin(thief, ts, at=99.0),
        Op.write(thief, "update", target.table, target.key,
                 (target.key, "stolen"), prev_writer=target.prev_writer,
                 prev_ts=target.prev_ts, at=99.1),
        Op.commit(thief, ts + 1, at=99.2),
    ]
    assert_only(History(planted), "lost-update")


def test_planted_aborted_read_detected():
    ops = [
        Op.begin(1, 10),
        Op.write(1, "insert", "t", 1, (1, "doomed")),
        # Reader observes txn 1's uncommitted version...
        Op.begin(2, 11),
        Op.read(2, "t", 1, (1, "doomed"), writer_txn=1, version_ts=None),
        Op.commit(2, 12),
        # ... and the writer then rolls back: G1a.
        Op.abort(1),
    ]
    history = History(ops)
    kinds = {a.kind for a in all_anomalies(history)}
    # The dirty read is both an aborted read and, to the SI checker, an
    # uncommitted-foreign-version observation.
    assert "G1a" in kinds
    assert kinds <= {"G1a", "si-future-read"}


def test_planted_intermediate_read_detected():
    ops = [
        Op.begin(1, 10),
        Op.write(1, "insert", "t", 1, (1, "draft")),
        Op.write(1, "update", "t", 1, (1, "final"),
                 prev_writer=1, prev_ts=None),
        Op.commit(1, 11),
        Op.begin(2, 12),
        # Reads the *first* of txn 1's two writes: G1b.
        Op.read(2, "t", 1, (1, "draft"), writer_txn=1, version_ts=11),
        Op.commit(2, 13),
    ]
    assert_only(History(ops), "G1b")


def test_planted_write_cycle_detected():
    ops = [
        Op.begin(1, 10),
        Op.write(1, "insert", "t", 1, (1, "a")),
        Op.commit(1, 11),
        Op.begin(2, 12),
        Op.write(2, "insert", "t", 2, (2, "b")),
        Op.commit(2, 13),
        # 3 overwrites 4's version of key 1; 4 overwrites 3's version
        # of key 2 — a ww cycle no serial order explains.
        Op.begin(3, 14),
        Op.begin(4, 15),
        Op.write(3, "update", "t", 1, (1, "x"), prev_writer=4, prev_ts=17),
        Op.write(4, "update", "t", 2, (2, "y"), prev_writer=3, prev_ts=16),
        Op.commit(3, 16),
        Op.commit(4, 17),
    ]
    history = History(ops)
    kinds = {a.kind for a in all_anomalies(history)}
    assert "G0" in kinds


def test_planted_future_read_detected():
    ops = [
        Op.begin(1, 10),
        Op.begin(2, 11),
        Op.write(2, "insert", "t", 5, (5, "late")),
        Op.commit(2, 12),
        # Txn 1's snapshot (10) predates txn 2's commit (12), yet it
        # observed the version: data from the future.
        Op.read(1, "t", 5, (5, "late"), writer_txn=2, version_ts=12),
        Op.commit(1, 13),
    ]
    assert_only(History(ops), "si-future-read")


def test_planted_stale_read_detected():
    ops = [
        Op.begin(1, 10),
        Op.write(1, "insert", "t", 5, (5, "v1")),
        Op.commit(1, 11),
        Op.begin(2, 12),
        Op.write(2, "update", "t", 5, (5, "v2"), prev_writer=1, prev_ts=11),
        Op.commit(2, 13),
        # Snapshot 14 should see v2 (committed at 13); it read v1.
        Op.begin(3, 14),
        Op.read(3, "t", 5, (5, "v1"), writer_txn=1, version_ts=11),
        Op.commit(3, 15),
    ]
    assert_only(History(ops), "si-stale-read")


def test_planted_missed_read_detected():
    ops = [
        Op.begin(1, 10),
        Op.write(1, "insert", "t", 5, (5, "here")),
        Op.commit(1, 11),
        Op.begin(2, 12),
        Op.read(2, "t", 5, None),  # nothing, though 5 committed at 11
        Op.commit(2, 13),
    ]
    assert_only(History(ops), "si-missed-read")


def test_replayed_initial_state_is_judged_by_value():
    """Post-recovery reads observe REDO-replayed versions stamped with
    a synthetic timestamp and a pseudo writer the history never saw.
    Matching values are consistent; a mismatch is a stale read."""
    base = [
        Op.begin(1, 10),
        Op.write(1, "update", "t", 5, (5, "new"), prev_writer=0, prev_ts=1),
        Op.commit(1, 11),
        Op.begin(2, 12),
    ]
    ok = base + [
        Op.read(2, "t", 5, (5, "new"), writer_txn=-1, version_ts=1),
        Op.commit(2, 13),
    ]
    assert all_anomalies(History(ok)) == []
    stale = base + [
        Op.read(2, "t", 5, (5, "old"), writer_txn=-1, version_ts=1),
        Op.commit(2, 13),
    ]
    kinds = {a.kind for a in all_anomalies(History(stale))}
    assert kinds == {"si-stale-read"}


# -- coverage checkpoints ---------------------------------------------------

def entry(pid, low, high, candidates=(1,), moving=False):
    return CoverageEntry(partition_id=pid, low=low, high=high,
                         candidates=tuple(candidates), available=True,
                         moving=moving)


def checkpoint(entries, t=0.0):
    return CoverageCheckpoint(t=t, label="test", tables={"t": entries})


def test_coverage_clean_tiling_passes():
    checkpoints = [
        checkpoint([entry(1, None, (50,)), entry(2, (50,), None)]),
        # Mid-move: dual pointers are fine as long as the tiling holds.
        checkpoint([entry(1, None, (50,), candidates=(1, 2), moving=True),
                    entry(2, (50,), None)], t=1.0),
    ]
    assert check_partition_coverage(checkpoints) == []


def test_coverage_gap_overlap_unroutable_detected():
    gap = [checkpoint([entry(1, None, (40,)), entry(2, (50,), None)])]
    assert {a.kind for a in check_partition_coverage(gap)} == \
        {"coverage-gap"}
    overlap = [checkpoint([entry(1, None, (60,)), entry(2, (50,), None)])]
    assert {a.kind for a in check_partition_coverage(overlap)} == \
        {"coverage-overlap"}
    unroutable = [checkpoint([entry(1, None, (50,), candidates=()),
                              entry(2, (50,), None)])]
    assert {a.kind for a in check_partition_coverage(unroutable)} == \
        {"coverage-unroutable"}


def test_coverage_hull_change_detected():
    checkpoints = [
        checkpoint([entry(1, None, (50,)), entry(2, (50,), None)]),
        checkpoint([entry(1, (10,), (50,)), entry(2, (50,), None)], t=1.0),
    ]
    assert {a.kind for a in check_partition_coverage(checkpoints)} == \
        {"coverage-gap"}


@settings(max_examples=40, deadline=None)
@given(bounds=st.lists(st.integers(min_value=1, max_value=99),
                       min_size=0, max_size=6, unique=True),
       repeats=st.integers(min_value=1, max_value=3))
def test_property_any_sorted_tiling_passes(bounds, repeats):
    cuts = [None] + [(b,) for b in sorted(bounds)] + [None]
    entries = [entry(i, lo, hi)
               for i, (lo, hi) in enumerate(zip(cuts, cuts[1:]))]
    checkpoints = [checkpoint(entries, t=float(i)) for i in range(repeats)]
    assert check_partition_coverage(checkpoints) == []
