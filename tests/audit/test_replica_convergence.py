"""The replica-convergence checker: a synchronously shipped replica
replays to exactly the primary's committed contents, and any tampering
with the log is flagged as divergence."""

import dataclasses

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.audit.checkers import check_replica_convergence
from repro.ha.placement import PlacementPolicy
from repro.ha.replication import ReplicationManager

SCHEMA = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))


@pytest.fixture()
def rig():
    env = Environment(seed=11)
    cluster = Cluster(env, node_count=4, initially_active=4,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048, lock_timeout=2.0)
    cluster.master.create_table("kv", SCHEMA, owner=cluster.workers[1])

    def run(gen):
        return env.run(until=env.process(gen))

    def work():
        txn = cluster.txns.begin()
        for i in range(10):
            yield from cluster.master.insert("kv", (i, "v%03d" % i), txn)
        yield from cluster.txns.commit(txn)

    run(work())
    manager = ReplicationManager(
        cluster, k=2, policy=PlacementPolicy(cluster, rack_width=2))
    run(manager.protect_all())

    def churn():
        # Updates, a delete, and an aborted txn: the replay must apply
        # committed effects only and drop the tombstoned key.
        txn = cluster.txns.begin()
        for i in range(20, 24):
            yield from cluster.master.insert("kv", (i, "post"), txn)
        yield from cluster.master.update("kv", 3, (3, "updated"), txn)
        yield from cluster.master.delete("kv", 7, txn)
        yield from cluster.txns.commit(txn)
        doomed = cluster.txns.begin()
        yield from cluster.master.update("kv", 4, (4, "never"), doomed)
        cluster.txns.abort(doomed)

    run(churn())
    partition = cluster.workers[1].partitions_for_table("kv")[0]
    replica_set = cluster.catalog.replica_set_for(partition.partition_id)
    assert replica_set is not None and replica_set.replicas
    return env, cluster, replica_set


def shipped_insert(replica):
    return next(r for r in replica.log.records
                if r.kind == "insert" and r.txn_id > 0)


def tamper(replica, values):
    """Rewrite a shipped insert's payload in place (records are frozen,
    so swap the list entry)."""
    records = replica.log.records
    record = shipped_insert(replica)
    table, key, _values = record.payload
    records[records.index(record)] = dataclasses.replace(
        record, payload=(table, key, values))
    return key


def test_intact_replicas_converge(rig):
    _env, cluster, _rs = rig
    assert check_replica_convergence(cluster) == []


def test_tampered_replica_value_is_divergence(rig):
    _env, cluster, replica_set = rig
    replica = replica_set.replicas[0]
    key = tamper(replica, ("tampered",))
    anomalies = check_replica_convergence(cluster)
    assert anomalies, "tampered replica log went unnoticed"
    assert {a.kind for a in anomalies} == {"replica-divergence"}
    assert any(a.key == key for a in anomalies)


def test_replica_only_key_is_divergence(rig):
    _env, cluster, replica_set = rig
    replica = replica_set.replicas[0]
    committed_txn = shipped_insert(replica).txn_id
    replica.log.append(committed_txn, "insert", ("kv", 999, (999, "ghost")))
    anomalies = check_replica_convergence(cluster)
    assert [a.key for a in anomalies] == [999]
    assert "absent on the primary" in anomalies[0].description


def test_stale_replicas_are_not_compared(rig):
    _env, cluster, replica_set = rig
    replica = replica_set.replicas[0]
    tamper(replica, ("garbage",))
    replica.stale = True
    assert check_replica_convergence(cluster) == []


def test_dead_holders_are_not_compared(rig):
    _env, cluster, replica_set = rig
    replica = replica_set.replicas[0]
    tamper(replica, ("garbage",))
    cluster.worker(replica.holder_node_id).machine.crash()
    assert check_replica_convergence(cluster) == []


def test_absent_primary_partition_is_skipped(rig):
    _env, cluster, replica_set = rig
    primary = cluster.worker(replica_set.primary_node_id)
    del primary.partitions[replica_set.partition_id]
    assert check_replica_convergence(cluster) == []
