"""Access-layer behaviours: write intents, undo logging, locking-mode
visibility, and mid-move read routing."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.txn import LockMode


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=3, initially_active=2,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048, lock_timeout=1.0)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        txn = cluster.txns.begin()
        for i in range(50):
            yield from cluster.master.insert("kv", (i, "x"), txn)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    partition = list(cluster.workers[0].partitions.values())[0]
    return env, cluster, partition


def test_writers_announce_partition_intent(rig):
    env, cluster, partition = rig
    observed = {}

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 1, (1, "y"), txn)
        observed["mode"] = cluster.txns.locks.mode_held(
            txn.txn_id, ("partition", partition.partition_id)
        )
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(work()))
    assert observed["mode"] is LockMode.IX
    # Released at commit.
    assert cluster.txns.locks.holders(
        ("partition", partition.partition_id)
    ) == {}


def test_partition_read_lock_drains_mvcc_writers(rig):
    """The physiological protocol's prerequisite: a partition S lock
    waits for (and blocks) even MVCC writers."""
    env, cluster, partition = rig
    log = []

    def writer():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 1, (1, "w"), txn)
        yield env.timeout(2.0)  # hold the intent
        yield from cluster.txns.commit(txn)
        log.append(("writer-done", env.now))

    def mover():
        yield env.timeout(0.5)
        guard = cluster.txns.begin(is_system=True)
        yield from cluster.txns.locks.lock_partition(
            guard.txn_id, "kv", partition.partition_id, LockMode.S,
            timeout=30.0,
        )
        log.append(("lock-granted", env.now))
        yield from cluster.txns.commit(guard)

    env.process(writer())
    proc = env.process(mover())
    env.run(until=proc)
    assert log[0][0] == "writer-done"
    assert log[1][0] == "lock-granted"


def test_locking_update_logs_undo_image(rig):
    env, cluster, partition = rig
    worker = cluster.workers[0]

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 1, (1, "y"), txn, cc="locking")
        yield from worker.commit(txn, cc="locking")

    env.run(until=env.process(work()))
    kinds = [r.kind for r in worker.wal.records]
    assert "undo" in kinds

    def mvcc_work():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 2, (2, "y"), txn, cc="mvcc")
        yield from worker.commit(txn, cc="mvcc")

    before = [r.kind for r in worker.wal.records].count("undo")
    env.run(until=env.process(mvcc_work()))
    after = [r.kind for r in worker.wal.records].count("undo")
    assert after == before  # MVCC needs no separate undo image


def test_locking_read_ignores_uncommitted_delete_mark(rig):
    """Sect. 3.5: old copies remain readable until the movement (or the
    deleting transaction) commits."""
    env, cluster, partition = rig
    results = {}

    def work():
        deleter = cluster.txns.begin()
        yield from cluster.master.delete("kv", 5, deleter, cc="mvcc")
        # Uncommitted delete: a locking-mode reader still sees the row.
        reader = cluster.txns.begin()
        results["during"] = yield from cluster.master.read(
            "kv", 5, reader, cc="locking"
        )
        yield from cluster.txns.commit(reader)
        yield from cluster.txns.commit(deleter)
        reader2 = cluster.txns.begin()
        results["after"] = yield from cluster.master.read(
            "kv", 5, reader2, cc="locking"
        )
        yield from cluster.txns.commit(reader2)

    env.run(until=env.process(work()))
    assert results["during"] == (5, "x")
    assert results["after"] is None


def test_read_tries_other_candidate_when_not_visible_here(rig):
    """Mid-move routing: a key already moved to the target is found
    there even while the master still lists both candidates."""
    from repro.core import LogicalPartitioning

    env, cluster, partition = rig
    scheme = LogicalPartitioning()

    def move_and_read():
        yield from cluster.power_on(2)
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], [cluster.worker(2)], 0.5
        )
        txn = cluster.txns.begin()
        row = yield from cluster.master.read("kv", 49, txn)  # moved key
        yield from cluster.txns.commit(txn)
        return row

    row = env.run(until=env.process(move_and_read()))
    assert row == (49, "x")


def test_dispatch_hop_charged_once_per_txn_per_node(rig):
    """Plan shipping: the master pays one RPC per (txn, worker)."""
    from repro.metrics import CostBreakdown
    from repro.hardware import specs

    env, cluster, partition = rig
    # Move the table to node 1 so access needs a hop.
    cluster.master.create_table(
        "far", Schema([Column("id"), Column("v", "str", width=8)],
                      key=("id",)),
        owner=cluster.workers[1],
    )
    breakdown = CostBreakdown()

    def work():
        txn = cluster.txns.begin()
        for i in range(10):
            yield from cluster.master.insert("far", (i, "x"), txn,
                                             breakdown=breakdown)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(work()))
    # One dispatch round trip, not ten.
    assert breakdown.network_io == pytest.approx(
        specs.NET_RPC_LATENCY_SECONDS, rel=0.2
    )
