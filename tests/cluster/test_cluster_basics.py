"""Integration tests: cluster assembly and the routed access layer."""

import pytest

from repro import Cluster, Column, Environment, KeyRange, Schema


def small_cluster(node_count=4, initially_active=2, buffer_pages=256):
    env = Environment()
    cluster = Cluster(
        env, node_count=node_count, initially_active=initially_active,
        buffer_pages_per_node=buffer_pages, segment_max_pages=64,
    )
    return env, cluster


def simple_schema():
    return Schema([Column("id"), Column("v", "str", width=32)], key=("id",))


def run(env, gen):
    return env.run(until=env.process(gen))


def test_cluster_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Cluster(env, node_count=0)
    with pytest.raises(ValueError):
        Cluster(env, node_count=2, initially_active=3)


def test_cluster_construction():
    env, cluster = small_cluster()
    assert len(cluster.workers) == 4
    assert cluster.active_node_count == 2
    assert len(cluster.standby_workers()) == 2
    assert cluster.master.worker is cluster.workers[0]
    assert cluster.current_watts() > 0


def test_worker_lookup():
    env, cluster = small_cluster()
    assert cluster.worker(1).node_id == 1
    with pytest.raises(KeyError):
        cluster.worker(99)


def test_create_table_registers_partition():
    env, cluster = small_cluster()
    partition = cluster.master.create_table(
        "kv", simple_schema(), owner=cluster.workers[0]
    )
    assert partition.partition_id in cluster.workers[0].partitions
    location = cluster.master.gpt.locate("kv", 123)
    assert location.node_id == 0


def test_insert_then_read_roundtrip():
    env, cluster = small_cluster()
    master = cluster.master
    master.create_table("kv", simple_schema(), owner=cluster.workers[0])
    results = {}

    def work():
        txn = cluster.txns.begin()
        yield from master.plan()
        yield from master.insert("kv", (1, "hello"), txn)
        yield from master.insert("kv", (2, "world"), txn)
        yield from cluster.workers[0].commit(txn)

        reader = cluster.txns.begin()
        results["r1"] = yield from master.read("kv", 1, reader)
        results["r2"] = yield from master.read("kv", 2, reader)
        results["r3"] = yield from master.read("kv", 3, reader)
        yield from cluster.workers[0].commit(reader)

    run(env, work())
    assert results["r1"] == (1, "hello")
    assert results["r2"] == (2, "world")
    assert results["r3"] is None


def test_update_and_delete_roundtrip():
    env, cluster = small_cluster()
    master = cluster.master
    master.create_table("kv", simple_schema(), owner=cluster.workers[0])
    results = {}

    def work():
        txn = cluster.txns.begin()
        yield from master.insert("kv", (1, "v1"), txn)
        yield from cluster.workers[0].commit(txn)

        txn = cluster.txns.begin()
        yield from master.update("kv", 1, (1, "v2"), txn)
        yield from cluster.workers[0].commit(txn)

        txn = cluster.txns.begin()
        results["after_update"] = yield from master.read("kv", 1, txn)
        yield from master.delete("kv", 1, txn)
        yield from cluster.workers[0].commit(txn)

        txn = cluster.txns.begin()
        results["after_delete"] = yield from master.read("kv", 1, txn)
        yield from cluster.workers[0].commit(txn)

    run(env, work())
    assert results["after_update"] == (1, "v2")
    assert results["after_delete"] is None


def test_read_on_remote_partition_costs_network_hop():
    """A partition owned by node 1 is reached via an RPC from the
    master; the cost lands in the breakdown's network bucket."""
    from repro.metrics import CostBreakdown

    env, cluster = small_cluster()
    master = cluster.master
    master.create_table("kv", simple_schema(), owner=cluster.workers[1])
    breakdown = CostBreakdown()

    def work():
        txn = cluster.txns.begin()
        yield from master.insert("kv", (7, "x"), txn, breakdown=breakdown)
        yield from cluster.workers[1].commit(txn)

    run(env, work())
    assert breakdown.network_io > 0


def test_inserts_spill_across_segments():
    env, cluster = small_cluster()
    master = cluster.master
    master.create_table("kv", simple_schema(), owner=cluster.workers[0])
    partition = list(cluster.workers[0].partitions.values())[0]

    def work():
        txn = cluster.txns.begin()
        for i in range(500):
            yield from master.insert("kv", (i, "x" * 30), txn)
        yield from cluster.workers[0].commit(txn)

    run(env, work())
    assert partition.record_count == 500
    assert partition.segment_count >= 1


def test_power_off_requires_empty_node():
    env, cluster = small_cluster()
    master = cluster.master
    master.create_table("kv", simple_schema(), owner=cluster.workers[1])
    worker1 = cluster.workers[1]
    partition = list(worker1.partitions.values())[0]
    segment = partition.new_segment(KeyRange(None, None))
    worker1.host_segment(segment)

    def work():
        yield from cluster.power_off(1)

    with pytest.raises(Exception):
        run(env, work())


def test_master_cannot_power_off():
    env, cluster = small_cluster()

    def work():
        yield from cluster.power_off(0)

    with pytest.raises(Exception):
        run(env, work())


def test_power_on_off_cycle_changes_active_count():
    env, cluster = small_cluster(node_count=3, initially_active=1)

    def work():
        yield from cluster.power_on(1)
        assert cluster.active_node_count == 2
        yield from cluster.power_off(1)

    run(env, work())
    assert cluster.active_node_count == 1


def test_energy_accumulates():
    env, cluster = small_cluster()

    def clock():
        yield env.timeout(100)

    run(env, clock())
    assert cluster.energy_joules() > 0
