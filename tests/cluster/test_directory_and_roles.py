"""Tests for the segment directory, disk-role assignment, and the
remote page-access path (physical partitioning's substrate)."""

import pytest

from repro import Cluster, Column, Environment, KeyRange, Schema
from repro.cluster.cluster import SegmentDirectory
from repro.hardware import Disk, HDD_SPEC, SSD_SPEC
from repro.cluster.worker import WorkerNode
from repro.storage import Segment


class TestSegmentDirectory:
    def test_register_and_locate(self):
        env = Environment()
        directory = SegmentDirectory()
        disk = Disk(env, SSD_SPEC)
        directory.register(1, "worker-a", disk)
        assert directory.location(1) == ("worker-a", disk)
        assert directory.host_of(1) == "worker-a"
        assert 1 in directory
        assert 2 not in directory

    def test_double_register_rejected(self):
        env = Environment()
        directory = SegmentDirectory()
        disk = Disk(env, SSD_SPEC)
        directory.register(1, "a", disk)
        with pytest.raises(ValueError):
            directory.register(1, "b", disk)

    def test_unregister(self):
        env = Environment()
        directory = SegmentDirectory()
        disk = Disk(env, SSD_SPEC)
        directory.register(1, "a", disk)
        directory.unregister(1)
        assert 1 not in directory
        with pytest.raises(KeyError):
            directory.unregister(1)
        with pytest.raises(KeyError):
            directory.location(1)


class TestDiskRoles:
    def test_hdd_becomes_log_disk(self):
        data, log = WorkerNode._assign_disk_roles(
            [_disk(HDD_SPEC), _disk(SSD_SPEC), _disk(SSD_SPEC)]
        )
        assert log.spec.kind == "hdd"
        assert all(d.spec.kind == "ssd" for d in data)
        assert len(data) == 2

    def test_single_disk_shares_roles(self):
        only = _disk(HDD_SPEC)
        data, log = WorkerNode._assign_disk_roles([only])
        assert log is only
        assert data == [only]

    def test_all_ssd_first_is_log(self):
        disks = [_disk(SSD_SPEC), _disk(SSD_SPEC)]
        data, log = WorkerNode._assign_disk_roles(disks)
        assert log is disks[0]
        assert data == disks

    def test_no_disks_rejected(self):
        with pytest.raises(ValueError):
            WorkerNode._assign_disk_roles([])


def _disk(spec):
    return Disk(Environment(), spec)


class TestRemotePageAccess:
    """Physical partitioning's access path: pages hosted on another node
    are fetched over the network and cost more than local pages."""

    def make(self):
        env = Environment()
        cluster = Cluster(env, node_count=2, initially_active=2,
                          buffer_pages_per_node=64, segment_max_pages=8,
                          page_bytes=2048)
        schema = Schema([Column("id"), Column("v", "str", width=32)],
                        key=("id",))
        cluster.master.create_table("kv", schema, owner=cluster.workers[0])

        def load():
            txn = cluster.txns.begin()
            for i in range(40):
                yield from cluster.master.insert("kv", (i, "x" * 20), txn)
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(load()))
        return env, cluster

    def test_remote_read_costs_more_than_local(self):
        from repro.core import transfer_segment_storage

        env, cluster = self.make()
        worker0, worker1 = cluster.workers[0], cluster.workers[1]
        partition = list(worker0.partitions.values())[0]
        segment = list(partition.segments.values())[0]

        def timed_read():
            txn = cluster.txns.begin()
            t0 = env.now
            row = yield from worker0.read_record(partition, 0, txn)
            elapsed = yield from _finish(cluster, txn, env, t0)
            return row, elapsed

        def _finish(cluster, txn, env, t0):
            elapsed = env.now - t0
            yield from cluster.txns.commit(txn)
            return elapsed

        row, local_time = env.run(until=env.process(timed_read()))
        assert row is not None

        # Move the extent to node 1; ownership stays with node 0.
        def move():
            yield from transfer_segment_storage(
                cluster, segment, worker0, worker1
            )
            # Cold cache on the owner so the next read goes remote.
            for page in segment.pages:
                frame = worker0.buffer._frames.get(page.page_id)
                if frame is not None and frame.pins == 0:
                    worker0.buffer.discard(page.page_id)

        env.run(until=env.process(move()))
        assert cluster.directory.host_of(segment.segment_id) is worker1

        row, remote_time = env.run(until=env.process(timed_read()))
        assert row is not None
        assert remote_time > local_time
        # Node 0 received the page over the wire.
        assert worker0.port.bytes_received > 0
