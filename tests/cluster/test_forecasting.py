"""Tests for load forecasting and the proactive policy."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import PolicyThresholds, ThresholdPolicy
from repro.cluster.forecasting import (
    ForecastingPolicy,
    LoadForecaster,
    WorkloadHint,
)
from repro.cluster.monitor import NodeSample


def sample(node_id=0, cpu=0.0, time=0.0):
    return NodeSample(
        time=time, node_id=node_id, cpu_utilization=cpu,
        disk_utilization=0.0, iops=0.0, net_bytes=0,
        buffer_hit_ratio=1.0, partition_stats=[],
    )


class TestLoadForecaster:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadForecaster(alpha=0)
        with pytest.raises(ValueError):
            LoadForecaster(beta=1.5)
        with pytest.raises(ValueError):
            LoadForecaster(horizon=0)

    def test_no_prediction_before_observation(self):
        f = LoadForecaster()
        assert f.predict(0) is None
        assert f.trend(0) is None

    def test_flat_load_predicts_flat(self):
        f = LoadForecaster(horizon=30)
        for t in range(0, 60, 5):
            f.observe(sample(cpu=0.4, time=float(t)))
        assert f.predict(0, now=55.0) == pytest.approx(0.4, abs=0.05)
        assert f.trend(0) == pytest.approx(0.0, abs=0.01)

    def test_rising_load_predicts_above_current(self):
        f = LoadForecaster(horizon=30)
        for i, t in enumerate(range(0, 60, 5)):
            f.observe(sample(cpu=0.02 * i, time=float(t)))
        current = 0.02 * 11
        predicted = f.predict(0, now=55.0)
        assert predicted > current
        assert f.trend(0) > 0

    def test_prediction_clamped_to_unit_interval(self):
        f = LoadForecaster(horizon=1000)
        for i, t in enumerate(range(0, 60, 5)):
            f.observe(sample(cpu=min(0.08 * i, 1.0), time=float(t)))
        assert f.predict(0, now=55.0) == 1.0

    def test_hint_overrides_low_forecast(self):
        f = LoadForecaster(horizon=30)
        for t in range(0, 60, 5):
            f.observe(sample(cpu=0.1, time=float(t)))
        f.add_hint(WorkloadHint(start=80, end=120, expected_utilization=0.9))
        assert f.predict(0, now=55.0) == pytest.approx(0.9)
        # Outside the hint window the forecast is the smoothed level.
        assert f.predict(0, now=200.0) == pytest.approx(0.1, abs=0.05)

    def test_hint_validation(self):
        with pytest.raises(ValueError):
            WorkloadHint(10, 10, 0.5)
        with pytest.raises(ValueError):
            WorkloadHint(0, 10, 1.5)

    def test_clear_expired_hints(self):
        f = LoadForecaster()
        f.add_hint(WorkloadHint(0, 10, 0.9))
        f.add_hint(WorkloadHint(100, 200, 0.9))
        f.clear_expired_hints(now=50.0)
        assert len(f._hints) == 1

    def test_per_node_state_is_independent(self):
        f = LoadForecaster()
        f.observe(sample(node_id=0, cpu=0.9, time=0))
        f.observe(sample(node_id=1, cpu=0.1, time=0))
        assert f.predict(0) > f.predict(1)


utilizations = st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False)


class TestForecasterProperties:
    """Utilisation is a fraction: no input trace may ever drive the
    smoothed state (or any prediction) out of [0, 1]."""

    @given(trace=st.lists(utilizations, min_size=2, max_size=60),
           alpha=st.floats(min_value=0.05, max_value=1.0),
           beta=st.floats(min_value=0.05, max_value=1.0))
    def test_bursty_trace_stays_in_unit_interval(self, trace, alpha, beta):
        f = LoadForecaster(alpha=alpha, beta=beta, horizon=300.0)
        for i, cpu in enumerate(trace):
            f.observe(sample(cpu=cpu, time=5.0 * i))
            level, _trend, _t = f._state[0]
            assert 0.0 <= level <= 1.0
            predicted = f.predict(0)
            assert 0.0 <= predicted <= 1.0

    @given(low=utilizations, high=utilizations,
           step_at=st.integers(min_value=1, max_value=19),
           horizon=st.floats(min_value=1.0, max_value=10_000.0))
    def test_step_trace_stays_in_unit_interval(self, low, high, step_at,
                                               horizon):
        """A step input (the worst case for trend extrapolation: the
        trend right after the edge points far past the plateau) must
        still predict inside [0, 1] at any horizon."""
        f = LoadForecaster(alpha=0.9, beta=0.9, horizon=horizon)
        for i in range(20):
            cpu = low if i < step_at else high
            f.observe(sample(cpu=cpu, time=5.0 * i))
            level, _trend, _t = f._state[0]
            assert 0.0 <= level <= 1.0
            assert 0.0 <= f.predict(0) <= 1.0

    @given(start=st.floats(min_value=0.0, max_value=1_000.0),
           length=st.floats(min_value=1e-3, max_value=1_000.0),
           hinted=utilizations.filter(lambda u: u >= 0.5))
    def test_hint_window_boundaries(self, start, length, hinted):
        """A hint covers [start, end): the forecast at a target exactly
        on ``start`` honours the hint, a target exactly on ``end`` does
        not (it falls back to the smoothed level)."""
        end = start + length
        f = LoadForecaster(horizon=30.0)
        f.observe(sample(cpu=0.1, time=0.0))
        f.observe(sample(cpu=0.1, time=5.0))
        f.add_hint(WorkloadHint(start=start, end=end,
                                expected_utilization=hinted))
        # horizon=0 keeps the target time float-exact on the boundary.
        at_start = f.predict(0, now=start, horizon=0.0)
        assert at_start == pytest.approx(hinted)
        at_end = f.predict(0, now=end, horizon=0.0)
        assert at_end == pytest.approx(0.1, abs=0.05)


class TestForecastingPolicy:
    def test_fires_before_threshold_is_violated(self):
        """A steeply rising load triggers scale-out while current
        utilisation is still under the 80% bound."""
        base = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        policy = ForecastingPolicy(
            base, LoadForecaster(alpha=0.8, beta=0.8, horizon=60)
        )
        decision = None
        for i, t in enumerate(range(0, 40, 5)):
            cpu = 0.05 + 0.06 * i  # reaches only 0.47 now, 80%+ soon
            decision = policy.observe([sample(cpu=cpu, time=float(t))])
        assert decision is not None
        assert decision.wants_scale_out

    def test_plain_policy_would_not_fire(self):
        base = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        decision = None
        for i, t in enumerate(range(0, 40, 5)):
            cpu = 0.05 + 0.06 * i
            decision = base.observe([sample(cpu=cpu, time=float(t))])
        assert not decision.wants_scale_out

    def test_flat_load_does_not_false_fire(self):
        base = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        policy = ForecastingPolicy(base)
        decision = None
        for t in range(0, 60, 5):
            decision = policy.observe([sample(cpu=0.5, time=float(t))])
        assert not decision.wants_scale_out
        assert not decision.wants_scale_in

    def test_reset_passthrough(self):
        base = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        policy = ForecastingPolicy(base)
        policy.observe([sample(cpu=0.95, time=0.0)])
        policy.reset(0)
        assert policy.thresholds is base.thresholds
