"""Gray-failure detection: RTT/disk-service-time outlier scoring,
suspect → quarantine hysteresis, and the drain it drives."""

import pytest

from repro import Cluster, Environment
from repro.cluster.monitor import (
    GrayFailureDetector,
    NODE_STATUSES,
    NodeSample,
)
from repro.hardware import specs


@pytest.fixture()
def rig():
    env = Environment(seed=5)
    cluster = Cluster(env, node_count=5, initially_active=5,
                      buffer_pages_per_node=64)
    return env, cluster


def _sample(cluster, node_id, *, rtt=None, svc=1e-3, time=0.0):
    return NodeSample(
        time=time, node_id=node_id, cpu_utilization=0.1,
        disk_utilization=0.1, iops=10.0, net_bytes=0,
        buffer_hit_ratio=1.0, partition_stats=[],
        heartbeat_rtt=rtt if rtt is not None
        else 2.0 * specs.NET_RPC_LATENCY_SECONDS,
        disk_service_time=svc,
    )


def _feed(cluster, samples):
    cluster.monitor.history.extend(samples)


def test_samples_carry_rtt_service_time_and_status(rig):
    env, cluster = rig
    sample = cluster.monitor.sample_node(cluster.worker(1))
    assert sample.heartbeat_rtt == pytest.approx(
        2.0 * specs.NET_RPC_LATENCY_SECONDS
    )
    assert sample.disk_service_time == 0.0  # no I/O yet
    assert sample.status == "alive"
    cluster.monitor.set_status(1, "suspect")
    assert cluster.monitor.sample_node(cluster.worker(1)).status == "suspect"
    with pytest.raises(ValueError):
        cluster.monitor.set_status(1, "zombie")
    assert "suspect" in NODE_STATUSES and "dead" in NODE_STATUSES


def test_flaky_port_inflates_reported_rtt(rig):
    env, cluster = rig
    base = cluster.monitor.sample_node(cluster.worker(1)).heartbeat_rtt
    cluster.worker(1).port.make_flaky(0.5, 0.01)
    degraded = cluster.monitor.sample_node(cluster.worker(1)).heartbeat_rtt
    # 2x extra delay both ways plus the expected 1/(1-loss) resends.
    assert degraded > 2.0 * base
    cluster.worker(1).port.heal()
    assert cluster.monitor.sample_node(
        cluster.worker(1)).heartbeat_rtt == pytest.approx(base)


def test_outlier_scoring_flags_only_the_limping_node(rig):
    env, cluster = rig
    detector = GrayFailureDetector(cluster)
    _feed(cluster, [_sample(cluster, n) for n in (1, 2, 3)]
          + [_sample(cluster, 4, svc=12e-3)])
    scores = detector.scores()
    assert scores[4] == pytest.approx(12.0)
    assert all(scores[n] == pytest.approx(1.0) for n in (1, 2, 3))


def test_suspect_needs_consecutive_strikes(rig):
    env, cluster = rig
    detector = GrayFailureDetector(cluster, suspect_strikes=2)
    _feed(cluster, [_sample(cluster, n) for n in (1, 2, 3)]
          + [_sample(cluster, 4, svc=12e-3)])
    detector.poll_once()
    assert detector.state.get(4, "alive") == "alive"  # one strike only
    detector.poll_once()
    assert detector.state[4] == "suspect"
    assert cluster.monitor.status_of(4) == "suspect"
    assert detector.suspects == 1
    assert 4 in detector.first_flagged


def test_cluster_wide_slowdown_flags_nobody(rig):
    env, cluster = rig
    detector = GrayFailureDetector(cluster)
    _feed(cluster, [_sample(cluster, n, svc=50e-3) for n in (1, 2, 3, 4)])
    for _ in range(5):
        detector.poll_once()
    assert detector.suspects == 0  # everyone is slow relative to no one


def test_quarantine_drives_drain_and_clear_undrains(rig):
    env, cluster = rig

    class StubCoordinator:
        def __init__(self):
            self.drained = []
            self.undrained = []

        def drain_node(self, node_id, priority=0):
            self.drained.append(node_id)
            return iter(())

        def undrain_node(self, node_id):
            self.undrained.append(node_id)

    coordinator = StubCoordinator()
    detector = GrayFailureDetector(
        cluster, coordinator, suspect_strikes=2, quarantine_strikes=2,
        clear_polls=2,
    )

    def limp():
        _feed(cluster, [_sample(cluster, n) for n in (1, 2, 3)]
              + [_sample(cluster, 4, svc=12e-3)])

    def healthy():
        _feed(cluster, [_sample(cluster, n) for n in (1, 2, 3, 4)])

    to_drain = []
    for _ in range(4):
        limp()
        to_drain += detector.poll_once()
    assert detector.state[4] == "quarantined"
    assert to_drain == [4]
    assert detector.quarantines == 1
    # Recovery: consecutive clean polls clear the node and undrain it.
    healthy()
    detector.poll_once()
    assert detector.state[4] == "quarantined"  # hysteresis: not yet
    healthy()
    detector.poll_once()
    assert detector.state[4] == "alive"
    assert cluster.monitor.status_of(4) == "alive"
    assert coordinator.undrained == [4]
    assert detector.clears == 1


def test_oscillating_node_does_not_flap(rig):
    """A node bouncing between outlier and healthy must not rack up
    suspect/clear transitions — both edges carry hysteresis."""
    env, cluster = rig
    detector = GrayFailureDetector(cluster, suspect_strikes=3,
                                   clear_polls=3)
    for i in range(12):
        svc = 12e-3 if i % 2 == 0 else 1e-3
        _feed(cluster, [_sample(cluster, n) for n in (1, 2, 3)]
              + [_sample(cluster, 4, svc=svc)])
        detector.poll_once()
    assert detector.suspects == 0
    assert detector.clears == 0


def test_too_few_samples_scores_nothing(rig):
    env, cluster = rig
    detector = GrayFailureDetector(cluster, min_cluster_samples=3)
    _feed(cluster, [_sample(cluster, 1), _sample(cluster, 2)])
    assert detector.scores() == {}


def test_bad_thresholds_rejected(rig):
    env, cluster = rig
    with pytest.raises(ValueError):
        GrayFailureDetector(cluster, score_threshold=2.0,
                            clear_threshold=3.0)
    with pytest.raises(ValueError):
        GrayFailureDetector(cluster, suspect_strikes=0)
