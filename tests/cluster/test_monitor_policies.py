"""Tests for the cluster monitor and the threshold policies."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.cluster import PolicyThresholds, ScaleDecision, ThresholdPolicy
from repro.cluster.monitor import NodeSample


def make_sample(node_id=0, cpu=0.0, disk=0.0, time=0.0):
    return NodeSample(
        time=time, node_id=node_id, cpu_utilization=cpu,
        disk_utilization=disk, iops=0.0, net_bytes=0,
        buffer_hit_ratio=1.0, partition_stats=[],
    )


class TestThresholdPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PolicyThresholds(cpu_upper=0.2, cpu_lower=0.5)
        with pytest.raises(ValueError):
            PolicyThresholds(consecutive_samples=0)
        with pytest.raises(ValueError):
            PolicyThresholds(disk_upper=1.5)

    def test_overload_needs_consecutive_samples(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=2))
        first = policy.observe([make_sample(cpu=0.95)])
        assert not first.wants_scale_out
        second = policy.observe([make_sample(cpu=0.95)])
        assert second.wants_scale_out
        assert second.overloaded_nodes == [0]

    def test_streak_resets_on_normal_sample(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=2))
        policy.observe([make_sample(cpu=0.95)])
        policy.observe([make_sample(cpu=0.5)])
        decision = policy.observe([make_sample(cpu=0.95)])
        assert not decision.wants_scale_out

    def test_underload_detection(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        decision = policy.observe([make_sample(cpu=0.05, disk=0.01)])
        assert decision.wants_scale_in
        assert decision.underloaded_nodes == [0]

    def test_overload_suppresses_scale_in(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        decision = policy.observe([
            make_sample(node_id=0, cpu=0.95),
            make_sample(node_id=1, cpu=0.05),
        ])
        assert decision.wants_scale_out
        assert not decision.wants_scale_in

    def test_disk_overload_triggers(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
        decision = policy.observe([make_sample(disk=0.95)])
        assert decision.wants_scale_out

    def test_alternating_load_never_flaps(self):
        """The debounce contract: a load oscillating between over- and
        under-threshold every sample (the classic flapping input) must
        produce *zero* decisions with consecutive_samples=2 — neither
        streak ever reaches two."""
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=2))
        decisions = []
        for i in range(100):
            if i % 2 == 0:
                s = make_sample(cpu=0.95, disk=0.95, time=float(i))
            else:
                s = make_sample(cpu=0.02, disk=0.02, time=float(i))
            decisions.append(policy.observe([s]))
        assert not any(d.wants_scale_out for d in decisions)
        assert not any(d.wants_scale_in for d in decisions)
        assert not any(d.wants_space_relief for d in decisions)

    def test_reset_clears_streaks(self):
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=2))
        policy.observe([make_sample(cpu=0.95)])
        policy.reset(0)
        decision = policy.observe([make_sample(cpu=0.95)])
        assert not decision.wants_scale_out


class TestClusterMonitor:
    def make_cluster(self):
        env = Environment()
        cluster = Cluster(env, node_count=2, initially_active=2,
                          buffer_pages_per_node=256, segment_max_pages=16)
        return env, cluster

    def test_collect_skips_standby_nodes(self):
        env = Environment()
        cluster = Cluster(env, node_count=3, initially_active=1,
                          buffer_pages_per_node=256)
        samples = cluster.monitor.collect()
        assert [s.node_id for s in samples] == [0]

    def test_cpu_utilization_window(self):
        env, cluster = self.make_cluster()
        worker = cluster.workers[0]

        def burn():
            yield from worker.cpu.execute(10.0)

        env.process(burn())
        env.run(until=10.0)
        sample = cluster.monitor.sample_node(worker)
        # One of two cores busy the whole window.
        assert sample.cpu_utilization == pytest.approx(0.5, abs=0.05)

    def test_windows_are_deltas_not_cumulative(self):
        env, cluster = self.make_cluster()
        worker = cluster.workers[0]

        def burn():
            yield from worker.cpu.execute(10.0)

        env.process(burn())
        env.run(until=10.0)
        cluster.monitor.sample_node(worker)
        env.run(until=20.0)  # idle second window
        sample = cluster.monitor.sample_node(worker)
        assert sample.cpu_utilization == pytest.approx(0.0, abs=0.01)

    def test_partition_stats_deltas(self):
        env, cluster = self.make_cluster()
        worker = cluster.workers[0]
        worker.note_partition_pages(7, 10)
        s1 = cluster.monitor.sample_node(worker)
        assert s1.partition_stats[0].page_requests == 10
        worker.note_partition_pages(7, 5)
        env.run(until=1.0)
        s2 = cluster.monitor.sample_node(worker)
        assert s2.partition_stats[0].page_requests == 5

    def test_monitor_process_collects_on_interval(self):
        env, cluster = self.make_cluster()
        cluster.monitor.interval = 2.0
        env.process(cluster.monitor.run())
        env.run(until=7.0)
        assert len(cluster.monitor.history) == 3 * 2  # 3 rounds x 2 nodes
        assert cluster.monitor.latest_for(1) is not None
        assert cluster.monitor.latest_for(9) is None

    def test_history_limit(self):
        env, cluster = self.make_cluster()
        cluster.monitor.history_limit = 5
        for _ in range(10):
            env.run(until=env.now + 1.0)
            cluster.monitor.collect()
        assert len(cluster.monitor.history) == 5
