"""ClusterMonitor must tolerate offline, crashed, partitioned, and
removed workers: a monitoring round never dies because a node did."""

import pytest

from repro import Cluster, Environment


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=4, initially_active=4,
                      buffer_pages_per_node=64)
    return env, cluster


def test_collect_skips_crashed_worker(rig):
    env, cluster = rig
    cluster.worker(2).machine.crash()
    samples = cluster.monitor.collect()
    assert {s.node_id for s in samples} == {0, 1, 3}
    assert 2 not in cluster.monitor.heartbeats


def test_collect_skips_severed_worker(rig):
    env, cluster = rig
    cluster.worker(1).port.sever()
    samples = cluster.monitor.collect()
    assert 1 not in {s.node_id for s in samples}
    cluster.worker(1).port.restore()
    samples = cluster.monitor.collect()
    assert 1 in {s.node_id for s in samples}


def test_collect_skips_standby_worker():
    env = Environment()
    cluster = Cluster(env, node_count=4, initially_active=2,
                      buffer_pages_per_node=64)
    samples = cluster.monitor.collect()
    assert {s.node_id for s in samples} == {0, 1}
    # Standby nodes never heartbeat — the failure detector must not
    # declare them dead (it ignores nodes with no entry at all).
    assert set(cluster.monitor.heartbeats) == {0, 1}


def test_collect_tolerates_worker_removed_midflight(rig):
    env, cluster = rig
    # A worker yanked from the monitored list mid-round (scale-in).
    cluster.monitor.workers = [w for w in cluster.monitor.workers
                               if w.node_id != 3]
    samples = cluster.monitor.collect()
    assert {s.node_id for s in samples} == {0, 1, 2}


def test_heartbeats_go_stale_not_absent(rig):
    env, cluster = rig
    def script():
        for _ in range(3):
            yield env.timeout(1.0)
            cluster.monitor.collect()
        cluster.worker(2).machine.crash()
        for _ in range(3):
            yield env.timeout(1.0)
            cluster.monitor.collect()

    env.run(until=env.process(script()))
    # The dead node keeps its LAST heartbeat; it just stops advancing.
    assert cluster.monitor.heartbeats[2] == 3.0
    assert cluster.monitor.heartbeats[1] == 6.0
    assert cluster.monitor.last_heartbeat(2) == 3.0


def test_sample_exception_is_a_missed_heartbeat(rig):
    env, cluster = rig

    class Boom(Exception):
        pass

    original = cluster.monitor.sample_node

    def flaky(worker):
        if worker.node_id == 1:
            raise Boom("disk died mid-report")
        return original(worker)

    cluster.monitor.sample_node = flaky
    samples = cluster.monitor.collect()
    assert {s.node_id for s in samples} == {0, 2, 3}
    assert 1 not in cluster.monitor.heartbeats
