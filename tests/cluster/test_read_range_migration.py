"""Range reads: pruning, limits, and correctness while data is split
across both ends of an in-flight migration."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.core import LogicalPartitioning, PhysiologicalPartitioning


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=3, initially_active=2,
                      buffer_pages_per_node=512, segment_max_pages=4,
                      page_bytes=1024, lock_timeout=1.0)
    schema = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        txn = cluster.txns.begin()
        for i in range(300):
            yield from cluster.master.insert("kv", (i, "r%03d" % i), txn)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    return env, cluster


def read_range(env, cluster, lo, hi, limit=None):
    def go():
        txn = cluster.txns.begin()
        rows = yield from cluster.master.read_range("kv", lo, hi, txn,
                                                    limit=limit)
        yield from cluster.txns.commit(txn)
        return rows

    return env.run(until=env.process(go()))


def test_basic_range(rig):
    env, cluster = rig
    rows = read_range(env, cluster, 100, 110)
    assert [r[0] for r in rows] == list(range(100, 110))


def test_range_with_limit(rig):
    env, cluster = rig
    rows = read_range(env, cluster, 0, 300, limit=7)
    assert [r[0] for r in rows] == list(range(7))


def test_unbounded_range(rig):
    env, cluster = rig
    rows = read_range(env, cluster, None, None)
    assert len(rows) == 300


def test_range_spanning_migrated_boundary(rig):
    """After a physiological 50% move, a range straddling the split
    point merges rows from both owners in key order."""
    env, cluster = rig

    def migrate():
        yield from cluster.power_on(2)
        scheme = PhysiologicalPartitioning()
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], [cluster.worker(2)], 0.5
        )

    env.run(until=env.process(migrate()))
    owners = {loc.node_id for _r, loc in cluster.master.gpt.partitions("kv")}
    assert owners == {0, 2}
    rows = read_range(env, cluster, 100, 200)
    assert [r[0] for r in rows] == list(range(100, 200))


def test_range_during_logical_move_sees_everything(rig):
    """Range reads issued while the mover is mid-flight never lose
    rows: values may be old or new, but every key is present."""
    env, cluster = rig
    problems = []
    done = env.event()

    def reader():
        while not done.triggered:
            txn = cluster.txns.begin()
            rows = yield from cluster.master.read_range("kv", 140, 160, txn)
            keys = [r[0] for r in rows]
            if keys != list(range(140, 160)):
                problems.append((env.now, keys))
            yield from cluster.txns.commit(txn)
            yield env.timeout(0.2)

    def mover():
        yield from cluster.power_on(2)
        scheme = LogicalPartitioning()
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], [cluster.worker(2)], 0.5
        )
        done.succeed()

    env.process(reader())
    env.process(mover())
    env.run(until=done)
    assert problems == []
