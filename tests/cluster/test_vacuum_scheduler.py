"""The incremental vacuum scheduler: chunked, resumable, load-aware,
and exact about its ``until`` bound.

The compat surface (full sweep per tick) is pinned by
``tests/workload/test_vacuum_daemon.py``; this file covers what the
scheduler adds — bounded chunks, per-tick budgets, busy-node deferral —
and the two ``until`` regressions the old daemon had: a tick scheduled
past the bound on float drift, and a tick fired on a drained
environment whose clock already sat at the bound.
"""

import pytest

from repro import Cluster, Environment
from repro.cluster.vacuum import VacuumPolicy, VacuumScheduler
from repro.storage import Column, Schema


SCHEMA = Schema([Column("id"), Column("v", "str", width=16)], key=("id",))


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=1, initially_active=1,
                      segment_max_pages=16, page_bytes=2048)
    cluster.master.create_table("kv", SCHEMA, owner=cluster.workers[0])
    return env, cluster


def churn(cluster, n=10):
    def work():
        for i in range(n):
            txn = cluster.txns.begin()
            yield from cluster.master.insert("kv", (i, "a"), txn)
            yield from cluster.txns.commit(txn)
            txn = cluster.txns.begin()
            yield from cluster.master.update("kv", i, (i, "b"), txn)
            yield from cluster.txns.commit(txn)
    return work


# -- until-bound regressions -------------------------------------------------

def test_started_at_the_bound_never_ticks(rig):
    """A scheduler started when ``env.now`` already equals ``until``
    must exit without a single sweep — the drained-environment case
    (the old daemon computed step = until - now = 0 only for > 0)."""
    env, cluster = rig
    env.run(until=env.process(churn(cluster)()))
    env.run()
    now = env.now
    sched = VacuumScheduler(cluster, VacuumPolicy(interval=5.0),
                            until=now).start()
    env.run()
    assert sched.sweeps == 0
    assert sched.ticks == 0
    assert env.now == now
    assert sched.process.is_alive is False


def test_started_past_the_bound_never_ticks(rig):
    env, cluster = rig
    env.run(until=10.0)
    sched = VacuumScheduler(cluster, VacuumPolicy(interval=5.0),
                            until=3.0).start()
    env.run()
    assert sched.ticks == 0
    assert env.now == 10.0


def test_no_tick_lands_past_until_on_float_drift(rig):
    """interval=0.1 accumulates float error (10 * 0.1 != 1.0).  The
    bound decision rides on the scheduled target, not re-accumulated
    clock time, so however the drift falls the final tick lands AT the
    bound — never one drift-tick beyond it — and the process exits."""
    env, cluster = rig
    sched = VacuumScheduler(cluster, VacuumPolicy(interval=0.1),
                            until=1.0).start()
    env.run()
    assert 10 <= sched.ticks <= 11        # drift may split the last step
    assert env.now == pytest.approx(1.0)
    assert env.now <= 1.0
    assert sched.process.is_alive is False


# -- chunked, resumable reclamation ------------------------------------------

def test_unbounded_policy_sweeps_everything_per_tick(rig):
    env, cluster = rig
    env.run(until=env.process(churn(cluster)()))
    sched = VacuumScheduler(cluster, VacuumPolicy(interval=1.0),
                            until=env.now + 1.0).start()
    env.run()
    assert sched.sweeps == 1
    assert sched.reclaimed == 10          # all superseded versions, one tick


def test_chunk_limit_spreads_work_over_ticks(rig):
    """With a per-tick budget the backlog drains incrementally: every
    tick reclaims at most the budget, and the queue resumes where it
    left off instead of rescanning from scratch."""
    env, cluster = rig
    env.run(until=env.process(churn(cluster, n=12)()))
    policy = VacuumPolicy(interval=1.0, chunk_versions=2,
                          max_reclaim_per_tick=2)
    sched = VacuumScheduler(cluster, policy, until=env.now + 20.0).start()
    t0 = env.now

    def probe():
        seen = []
        for _ in range(4):
            yield env.timeout(1.0)
            seen.append(sched.reclaimed)
        return seen

    seen = env.run(until=env.process(probe()))
    assert seen == [2, 4, 6, 8]           # exactly the budget, every tick
    env.run()
    assert sched.reclaimed == 12          # the backlog fully drains
    assert env.now == pytest.approx(t0 + 20.0)


def test_sweep_counts_completed_passes_only(rig):
    """Under a budget, ``sweeps`` advances only when a full pass over
    the cluster's segments completes — partial passes don't count."""
    env, cluster = rig
    env.run(until=env.process(churn(cluster, n=12)()))
    policy = VacuumPolicy(interval=1.0, max_reclaim_per_tick=2)
    sched = VacuumScheduler(cluster, policy, until=env.now + 3.0).start()
    env.run()
    assert sched.ticks == 3
    assert sched.sweeps < sched.ticks


# -- load-aware throttling ---------------------------------------------------

def test_busy_nodes_are_deferred(rig):
    """A node pinned at 100% CPU for the whole window is skipped; the
    backlog drains only after the load stops."""
    env, cluster = rig
    env.run(until=env.process(churn(cluster)()))
    worker = cluster.workers[0]

    def hog():
        # Occupy every core so the gauge window reads utilization 1.0.
        for _ in range(worker.machine.cpu.cores):
            env.process(worker.machine.cpu.execute(20.0), name="hog")
        yield env.timeout(0.0)

    env.run(until=env.process(hog()))
    t0 = env.now
    policy = VacuumPolicy(interval=5.0, load_threshold=0.5)
    sched = VacuumScheduler(cluster, policy, until=t0 + 40.0).start()
    env.run()
    assert sched.throttled_ticks > 0
    assert sched.deferred_segments > 0
    assert sched.reclaimed == 10          # drained once the hogs finished

    # And an idle cluster with the same policy is never throttled.
    env2 = Environment()
    cluster2 = Cluster(env2, node_count=1, initially_active=1,
                       segment_max_pages=16, page_bytes=2048)
    cluster2.master.create_table("kv", SCHEMA, owner=cluster2.workers[0])
    env2.run(until=env2.process(churn(cluster2)()))
    sched2 = VacuumScheduler(cluster2, policy, until=env2.now + 40.0).start()
    env2.run()
    assert sched2.throttled_ticks == 0
    assert sched2.reclaimed == 10


def test_invalid_interval_rejected(rig):
    _env, cluster = rig
    with pytest.raises(ValueError):
        VacuumScheduler(cluster, VacuumPolicy(interval=0.0))


def test_stats_shape(rig):
    env, cluster = rig
    env.run(until=env.process(churn(cluster)()))
    sched = VacuumScheduler(cluster, VacuumPolicy(interval=1.0),
                            until=env.now + 1.0).start()
    env.run()
    stats = sched.stats()
    assert stats["sweeps"] == 1
    assert stats["reclaimed"] == 10
    assert stats["pending_segments"] == 0
