"""Shared fixture: a loaded cluster ready for migration experiments."""

import pytest

from repro import Cluster, Column, Environment, Schema


@pytest.fixture()
def migration_cluster():
    """Four nodes (2 active), one table with 400 rows on node 0, laid
    out across several small segments."""
    env = Environment()
    cluster = Cluster(
        env, node_count=4, initially_active=2,
        buffer_pages_per_node=512, segment_max_pages=8, page_bytes=1024,
    )
    schema = Schema(
        [Column("id"), Column("v", "str", width=40)],
        key=("id",),
    )
    master = cluster.master
    master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        for start in range(0, 400, 50):
            txn = cluster.txns.begin()
            for i in range(start, start + 50):
                yield from master.insert("kv", (i, "payload-%04d" % i), txn)
            yield from cluster.workers[0].commit(txn)

    env.run(until=env.process(load()))
    return env, cluster


def read_all(env, cluster, keys=range(400)):
    """Read every key through master routing; returns missing keys."""
    missing = []

    def check():
        txn = cluster.txns.begin()
        for key in keys:
            row = yield from cluster.master.read("kv", key, txn)
            if row is None or row[0] != key:
                missing.append(key)
        yield from cluster.workers[0].commit(txn)

    env.run(until=env.process(check()))
    return missing
