"""Integration: the forecasting policy drives proactive scale-out."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.cluster import PolicyThresholds, ThresholdPolicy
from repro.cluster.forecasting import (
    ForecastingPolicy,
    LoadForecaster,
    WorkloadHint,
)
from repro.core import PhysiologicalPartitioning, Rebalancer


def build():
    env = Environment()
    cluster = Cluster(env, node_count=3, initially_active=1,
                      buffer_pages_per_node=256, segment_max_pages=8,
                      page_bytes=2048)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        txn = cluster.txns.begin()
        for i in range(100):
            yield from cluster.master.insert("kv", (i, "x" * 20), txn)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    return env, cluster


def ramping_hog(env, cluster, stop_flag):
    """CPU load that grows ~6% of one core per 5 seconds."""

    def hog():
        intensity = 0.05
        while not stop_flag[0]:
            busy = min(intensity, 0.95) * 5.0 * cluster.workers[0].cpu.cores
            yield from cluster.workers[0].cpu.execute(busy / 2)
            # Two cores: issue the second half concurrently-ish.
            yield from cluster.workers[0].cpu.execute(busy / 2)
            intensity += 0.06
            remainder = 5.0 - busy  # crude pacing
            if remainder > 0:
                yield env.timeout(remainder)

    return env.process(hog())


def run_with_policy(policy, duration=120.0):
    env, cluster = build()
    rebalancer = Rebalancer(cluster, PhysiologicalPartitioning(),
                            policy=policy)
    stop = [False]
    ramping_hog(env, cluster, stop)
    first_scale_out = []

    loop = env.process(
        rebalancer.run_policy_loop(["kv"], interval=5.0,
                                   cooldown_intervals=100),
    )

    def watcher():
        while env.now < duration:
            yield env.timeout(1.0)
            if rebalancer.scale_out_count and not first_scale_out:
                first_scale_out.append(env.now)
                break
        stop[0] = True
        rebalancer.stop()

    env.run(until=env.process(watcher()))
    return first_scale_out[0] if first_scale_out else None


def test_forecasting_scales_out_before_plain_policy():
    thresholds = PolicyThresholds(cpu_upper=0.8, cpu_lower=0.02,
                                  consecutive_samples=2)
    plain_time = run_with_policy(ThresholdPolicy(thresholds))
    proactive_time = run_with_policy(ForecastingPolicy(
        ThresholdPolicy(thresholds),
        LoadForecaster(alpha=0.7, beta=0.6, horizon=40.0),
    ))
    assert proactive_time is not None
    # The forecaster fires earlier on the same ramp (or the plain
    # policy never fires within the window at all).
    if plain_time is not None:
        assert proactive_time < plain_time
