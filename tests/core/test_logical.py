"""Logical partitioning: record-level delete+reinsert movement."""

import pytest

from repro.core import LogicalPartitioning, PhysiologicalPartitioning
from tests.core.conftest import read_all


def migrate(env, cluster, fraction=0.5, targets=(2, 3), cc="mvcc"):
    scheme = LogicalPartitioning()
    target_workers = []

    def go():
        for node_id in targets:
            worker = cluster.worker(node_id)
            if not worker.is_active:
                yield from cluster.power_on(node_id)
            target_workers.append(worker)
        reports = yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], target_workers, fraction, cc=cc
        )
        return reports

    return env.run(until=env.process(go()))


def test_records_moved_exactly(migration_cluster):
    """Logical movement is record-exact (quantile split, not segments)."""
    env, cluster = migration_cluster
    reports = migrate(env, cluster, fraction=0.5)
    moved = sum(r.records_moved for r in reports)
    assert moved == 200


def test_ownership_transfers(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    owners = {loc.node_id for _r, loc in cluster.master.gpt.partitions("kv")}
    assert owners == {0, 2, 3}


def test_all_records_readable_after_move(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    assert read_all(env, cluster) == []


def test_target_partitions_hold_the_moved_records(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    moved = 0
    for node_id in (2, 3):
        for partition in cluster.worker(node_id).partitions.values():
            moved += partition.record_count
    assert moved == 200
    source_partition = list(cluster.workers[0].partitions.values())[0]
    assert source_partition.record_count == 200


def test_logical_rewrites_records_into_new_segments(migration_cluster):
    """Unlike physiological, logical movement re-creates records in
    freshly allocated segments on the target."""
    env, cluster = migration_cluster
    source_partition = list(cluster.workers[0].partitions.values())[0]
    ids_before = set(source_partition.segments)
    migrate(env, cluster)
    for node_id in (2, 3):
        for partition in cluster.worker(node_id).partitions.values():
            assert set(partition.segments).isdisjoint(ids_before)


def test_source_space_reclaimed(migration_cluster):
    env, cluster = migration_cluster
    source = cluster.workers[0]
    before = source.disk_space.segment_count()
    migrate(env, cluster)

    def settle():
        # Extent release is deferred until in-flight txns drain.
        yield env.timeout(10.0)

    env.run(until=env.process(settle()))
    # Vacuum + empty-segment cleanup freed extents on the source.
    assert source.disk_space.segment_count() < before


def test_logical_is_slower_than_physiological(migration_cluster):
    """The paper's core comparison: scanning and re-inserting records
    takes longer than shipping raw segments."""
    env, cluster = migration_cluster

    # Run logical first on this cluster and measure.
    t0 = env.now
    migrate(env, cluster, fraction=0.3, targets=(2,))
    logical_time = env.now - t0

    # Fresh identical cluster for physiological.
    env2, cluster2 = _fresh()
    scheme = PhysiologicalPartitioning()

    def go():
        yield from cluster2.power_on(2)
        yield from scheme.migrate_fraction(
            cluster2, "kv", cluster2.workers[0], [cluster2.worker(2)], 0.3
        )

    t0 = env2.now
    env2.run(until=env2.process(go()))
    physio_time = env2.now - t0

    assert logical_time > physio_time


def _fresh():
    from repro import Cluster, Column, Environment, Schema

    env = Environment()
    cluster = Cluster(
        env, node_count=4, initially_active=2,
        buffer_pages_per_node=512, segment_max_pages=8, page_bytes=1024,
    )
    schema = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        for start in range(0, 400, 50):
            txn = cluster.txns.begin()
            for i in range(start, start + 50):
                yield from cluster.master.insert(
                    "kv", (i, "payload-%04d" % i), txn
                )
            yield from cluster.workers[0].commit(txn)

    env.run(until=env.process(load()))
    return env, cluster


def test_concurrent_reads_during_logical_move(migration_cluster):
    env, cluster = migration_cluster
    failures = []

    def reader():
        for i in range(150):
            txn = cluster.txns.begin()
            key = (i * 11) % 400
            row = yield from cluster.master.read("kv", key, txn)
            if row is None or row[0] != key:
                failures.append((env.now, key))
            yield from cluster.txns.commit(txn)
            yield env.timeout(0.05)

    def mover():
        scheme = LogicalPartitioning()
        yield from cluster.power_on(2)
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], [cluster.worker(2)], 0.5
        )

    reader_proc = env.process(reader())
    env.process(mover())
    env.run(until=reader_proc)
    assert failures == []


def test_concurrent_updates_during_logical_move(migration_cluster):
    """Client updates race the mover; conflicts retry; nothing is lost."""
    env, cluster = migration_cluster
    applied = []

    def writer():
        i = 0
        while len(applied) < 30:
            txn = cluster.txns.begin()
            key = 300 + (i % 100)
            i += 1
            try:
                yield from cluster.master.update(
                    "kv", key, (key, "client-%03d" % i), txn
                )
                yield from cluster.txns.commit(txn)
                applied.append(key)
            except Exception:
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
            yield env.timeout(0.2)

    def mover():
        scheme = LogicalPartitioning()
        yield from cluster.power_on(2)
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], [cluster.worker(2)], 0.5
        )

    writer_proc = env.process(writer())
    env.process(mover())
    env.run(until=writer_proc)
    assert len(applied) == 30
    assert read_all(env, cluster) == []


def test_locking_mode_movement(migration_cluster):
    """Under MGL-RX the mover takes record X locks; result identical."""
    env, cluster = migration_cluster
    reports = migrate(env, cluster, fraction=0.4, targets=(2,), cc="locking")
    assert sum(r.records_moved for r in reports) == 160
    assert read_all(env, cluster) == []
