"""Migration fuzz: random client traffic races a random scheme's
migration; afterwards every committed record is accounted for.

This is the paper's correctness claim ("Dynamic data migration must not
alter the result of concurrent queries") driven with randomized
workloads instead of hand-picked interleavings.
"""

import random

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.core import (
    LogicalPartitioning,
    PhysicalPartitioning,
    PhysiologicalPartitioning,
)
from repro.txn import TransactionAborted
from repro.txn.locks import LockTimeoutError

ROWS = 240


def build(seed):
    env = Environment()
    cluster = Cluster(env, node_count=4, initially_active=2,
                      buffer_pages_per_node=512, segment_max_pages=4,
                      page_bytes=1024, lock_timeout=1.0)
    schema = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])

    def load():
        txn = cluster.txns.begin()
        for i in range(ROWS):
            yield from cluster.master.insert("kv", (i, "base"), txn)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    return env, cluster


SCHEMES = {
    "physical": PhysicalPartitioning,
    "logical": LogicalPartitioning,
    "physiological": PhysiologicalPartitioning,
}


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("seed", [3, 17])
def test_fuzz_random_traffic_during_migration(scheme_name, seed):
    rng = random.Random(seed)
    env, cluster = build(seed)
    master = cluster.master
    # The oracle: committed value per key (None = deleted).
    oracle = {i: "base" for i in range(ROWS)}
    inserted_max = [ROWS - 1]
    migration_done = env.event()

    def client(client_id):
        step = 0
        while not migration_done.triggered:
            step += 1
            txn = cluster.txns.begin()
            op = rng.random()
            try:
                if op < 0.5:  # read
                    key = rng.randrange(ROWS)
                    row = yield from master.read("kv", key, txn)
                    expected = oracle.get(key)
                    if expected is not None:
                        assert row is not None, (key, "lost")
                    yield from cluster.txns.commit(txn)
                elif op < 0.8:  # update
                    key = rng.randrange(ROWS)
                    if oracle.get(key) is None:
                        cluster.txns.abort(txn)
                    else:
                        value = f"c{client_id}-{step}"
                        yield from master.update("kv", key, (key, value), txn)
                        yield from cluster.txns.commit(txn)
                        oracle[key] = value
                elif op < 0.9:  # insert a fresh key
                    key = inserted_max[0] + 1
                    inserted_max[0] = key
                    yield from master.insert("kv", (key, "new"), txn)
                    yield from cluster.txns.commit(txn)
                    oracle[key] = "new"
                else:  # delete
                    key = rng.randrange(ROWS)
                    if oracle.get(key) is None:
                        cluster.txns.abort(txn)
                    else:
                        yield from master.delete("kv", key, txn)
                        yield from cluster.txns.commit(txn)
                        oracle[key] = None
            except (TransactionAborted, LockTimeoutError, LookupError):
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
            yield env.timeout(rng.random() * 0.1)

    def mover():
        scheme = SCHEMES[scheme_name]()
        yield from cluster.power_on(2)
        yield from cluster.power_on(3)
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0],
            [cluster.worker(2), cluster.worker(3)], 0.5,
        )
        migration_done.succeed()

    for client_id in range(3):
        env.process(client(client_id))
    env.process(mover())
    env.run(until=migration_done)

    # Drain forwarding pointers / deferred unhosts, then verify the
    # whole oracle against the cluster.
    def settle():
        yield env.timeout(10.0)

    env.run(until=env.process(settle()))
    failures = []

    def verify():
        txn = cluster.txns.begin()
        for key in range(inserted_max[0] + 1):
            expected = oracle.get(key)
            row = yield from master.read("kv", key, txn)
            got = None if row is None else row[1]
            # Client txns that raced the final moment may have landed
            # after our oracle write; only presence/absence must match.
            if (expected is None) != (got is None):
                failures.append((key, expected, got))
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(verify()))
    assert failures == []
