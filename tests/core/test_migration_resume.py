"""Regressions for the crash-safe move path in ``core.migration``:
flush-under-pin, and adoption of an interrupted move's checkpoint."""

from repro.core.migration import flush_segment_pages
from repro.moves import COPY, DONE

from tests.moves.conftest import build_move_cluster, drive, first_segment


class TestFlushUnderPin:
    def test_pinned_dirty_frames_are_flushed_too(self):
        """A pin means "someone holds the frame", not "withhold the
        bytes": flush must write back pinned dirty frames, or the
        copied extent ships a stale image."""
        env, cluster, partition = build_move_cluster()
        worker = cluster.worker(1)
        segment = first_segment(partition)
        page = segment.pages[0]
        page_id = page.page_id

        def dirty_and_pin():
            yield from worker.fetch_page(page)
            worker.unpin_page(page, dirty=True)
            yield from worker.fetch_page(page)  # re-pin, still dirty

        env.run(until=env.process(dirty_and_pin(), name="pinner"))
        frame = worker.buffer._frames[page_id]
        assert frame.pins == 1 and frame.dirty

        io_before = sum(d.io_count for d in worker.disk_space.disks)
        drive(env, flush_segment_pages(worker, segment), name="flusher")
        io_after = sum(d.io_count for d in worker.disk_space.disks)

        assert not frame.dirty, "pinned dirty frame was skipped"
        assert frame.pins == 1, "flush must not steal the pin"
        assert io_after > io_before, "no write-back was issued"


class TestCheckpointAdoption:
    def test_restarted_coordinator_adopts_the_open_entry(self):
        """A coordinator crash leaves an open COPY entry and a
        half-filled target extent; the re-driven move must continue
        from the journaled chunk checkpoint, not restart from byte 0."""
        env, cluster, partition = build_move_cluster()
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        journal = cluster.moves.journal

        # Synthesize the post-crash state the journal would hold: the
        # entry advanced into COPY with two chunks acknowledged, the
        # target extent reserved, and no mover process alive.
        nbytes = segment.used_bytes
        orphan = journal.open_segment_move(
            segment.segment_id, source.node_id, target.node_id,
            nbytes, cluster.moves.chunk_bytes,
        )
        journal.advance(orphan, COPY)
        target.disk_space.place(segment)
        orphan.chunks_acked = 2
        orphan.bytes_shipped = 2 * cluster.moves.chunk_bytes
        t0 = env.now

        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target
        ))
        assert entry is orphan, "fresh entry opened instead of adopting"
        assert entry.phase == DONE
        assert entry.resumes == 1
        assert entry.chunks_acked * entry.chunk_bytes >= entry.bytes_total
        assert cluster.directory.location(segment.segment_id)[0] is target
        # Only the unacked remainder crossed the wire: two of four
        # chunks, at ~1 s each, instead of the full extent.
        assert env.now - t0 < 3.0

    def test_stale_entry_without_extent_restarts_clean(self):
        """Open entry but the target extent is gone (rolled back by
        failover): the mover closes the stale entry and starts fresh."""
        env, cluster, partition = build_move_cluster()
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        journal = cluster.moves.journal
        stale = journal.open_segment_move(
            segment.segment_id, source.node_id, target.node_id,
            segment.used_bytes, cluster.moves.chunk_bytes,
        )
        journal.advance(stale, COPY)
        stale.chunks_acked = 3  # checkpoint, but no extent to resume into

        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target
        ))
        assert entry is not stale
        assert not stale.is_open
        assert entry.phase == DONE
        assert entry.resumes == 0
        assert cluster.directory.location(segment.segment_id)[0] is target
