"""Physical partitioning: storage moves, ownership stays."""

from repro.core import PhysicalPartitioning
from tests.core.conftest import read_all


def migrate(env, cluster, fraction=0.5, targets=(2, 3)):
    scheme = PhysicalPartitioning()
    target_workers = []

    def go():
        for node_id in targets:
            worker = cluster.worker(node_id)
            if not worker.is_active:
                yield from cluster.power_on(node_id)
            target_workers.append(worker)
        reports = yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], target_workers, fraction
        )
        return reports

    return env.run(until=env.process(go()))


def test_segments_hosted_on_targets(migration_cluster):
    env, cluster = migration_cluster
    source = cluster.workers[0]
    before = source.disk_space.segment_count()
    reports = migrate(env, cluster)
    moved = sum(r.segments_moved for r in reports)
    assert moved > 0
    assert source.disk_space.segment_count() == before - moved
    assert (
        cluster.worker(2).disk_space.segment_count()
        + cluster.worker(3).disk_space.segment_count()
        == moved
    )


def test_moves_roughly_half_the_records(migration_cluster):
    env, cluster = migration_cluster
    reports = migrate(env, cluster, fraction=0.5)
    records = sum(r.records_moved for r in reports)
    assert 150 <= records <= 300  # ~200 of 400, rounded up to segments


def test_ownership_does_not_transfer(migration_cluster):
    """The defining property: partitions (and the gpt) are unchanged."""
    env, cluster = migration_cluster
    before = {
        loc.partition_id: loc.node_id
        for _r, loc in cluster.master.gpt.partitions("kv")
    }
    migrate(env, cluster)
    after = {
        loc.partition_id: loc.node_id
        for _r, loc in cluster.master.gpt.partitions("kv")
    }
    assert before == after
    assert len(cluster.worker(2).partitions) == 0
    assert len(cluster.worker(3).partitions) == 0


def test_all_records_still_readable(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    assert read_all(env, cluster) == []


def test_remote_pages_cost_network(migration_cluster):
    """Reads of moved segments now pay remote-page fetches."""
    env, cluster = migration_cluster
    migrate(env, cluster)
    source = cluster.workers[0]
    received_before = source.port.bytes_received

    def read_moved():
        txn = cluster.txns.begin()
        # Key 399 lives in a moved (upper-range) segment.
        row = yield from cluster.master.read("kv", 399, txn)
        assert row is not None
        yield from cluster.workers[0].commit(txn)

    env.run(until=env.process(read_moved()))
    assert source.port.bytes_received > received_before


def test_copy_moves_real_bytes(migration_cluster):
    env, cluster = migration_cluster
    reports = migrate(env, cluster)
    assert all(r.bytes_copied > 0 for r in reports if r.segments_moved)
    assert cluster.network.bytes_total >= sum(r.bytes_copied for r in reports)


def test_migration_takes_simulated_time(migration_cluster):
    env, cluster = migration_cluster
    t0 = env.now
    reports = migrate(env, cluster)
    assert env.now > t0
    assert all(r.duration >= 0 for r in reports)
