"""Physiological partitioning: segment moves WITH ownership transfer,
dual-pointer routing, forwarding retirement, checkpoint logging."""

import pytest

from repro.core import PhysiologicalPartitioning
from repro.index.partition_tree import Forwarding
from tests.core.conftest import read_all


def migrate(env, cluster, fraction=0.5, targets=(2, 3)):
    scheme = PhysiologicalPartitioning()
    target_workers = []

    def go():
        for node_id in targets:
            worker = cluster.worker(node_id)
            if not worker.is_active:
                yield from cluster.power_on(node_id)
            target_workers.append(worker)
        reports = yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0], target_workers, fraction
        )
        return reports

    return env.run(until=env.process(go()))


def test_ownership_transfers_to_targets(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    owners = {loc.node_id for _r, loc in cluster.master.gpt.partitions("kv")}
    assert owners == {0, 2, 3}
    assert len(cluster.worker(2).partitions) == 1
    assert len(cluster.worker(3).partitions) == 1
    for _r, loc in cluster.master.gpt.partitions("kv"):
        assert not loc.is_moving  # moves finalised


def test_all_records_readable_after_move(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    assert read_all(env, cluster) == []


def test_segments_spliced_not_rewritten(migration_cluster):
    """Moved segments keep their identity (the embedded index moved
    with them — no record-level rewrite happened)."""
    env, cluster = migration_cluster
    source_partition = list(cluster.workers[0].partitions.values())[0]
    ids_before = set(source_partition.segments)
    migrate(env, cluster)
    moved_ids = set()
    for worker in (cluster.worker(2), cluster.worker(3)):
        for partition in worker.partitions.values():
            moved_ids.update(partition.segments)
    assert moved_ids
    assert moved_ids <= ids_before


def test_forwarding_pointers_exist_then_retire(migration_cluster):
    env, cluster = migration_cluster
    source_partition = list(cluster.workers[0].partitions.values())[0]

    # Hold a transaction open across the migration so retirement waits.
    old_txn = cluster.txns.begin()
    migrate(env, cluster)
    forwardings = [
        t for _sid, _r, t in source_partition.tree.entries()
        if isinstance(t, Forwarding)
    ]
    assert forwardings  # old readers still have pointers to chase

    def drain():
        yield from cluster.txns.commit(old_txn)
        # Give the retirement watchers time to fire.
        yield env.timeout(5.0)

    env.run(until=env.process(drain()))
    leftover = [
        t for _sid, _r, t in source_partition.tree.entries()
        if isinstance(t, Forwarding)
    ]
    assert leftover == []


def test_move_acts_as_checkpoint_on_source_log(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    kinds = [r.kind for r in cluster.workers[0].wal.records]
    assert "checkpoint" in kinds


def test_new_writes_log_on_target_node(migration_cluster):
    env, cluster = migration_cluster
    migrate(env, cluster)
    target2 = cluster.worker(2)
    target3 = cluster.worker(3)
    before = len(target2.wal.records) + len(target3.wal.records)

    def write_moved_key():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 399, (399, "updated"), txn)
        # Commit flushes whichever WAL the write landed in.
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(write_moved_key()))
    after = len(target2.wal.records) + len(target3.wal.records)
    assert after > before


def test_concurrent_reads_survive_migration(migration_cluster):
    """Queries running *during* the move keep succeeding (the paper's
    central correctness claim)."""
    env, cluster = migration_cluster
    failures = []
    reads_done = []

    def reader():
        for i in range(200):
            txn = cluster.txns.begin()
            key = (i * 7) % 400
            row = yield from cluster.master.read("kv", key, txn)
            if row is None or row[0] != key:
                failures.append((env.now, key))
            yield from cluster.txns.commit(txn)
            reads_done.append(key)
            yield env.timeout(0.05)

    def mover():
        scheme = PhysiologicalPartitioning()
        yield from cluster.power_on(2)
        yield from cluster.power_on(3)
        reports = yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0],
            [cluster.worker(2), cluster.worker(3)], 0.5,
        )
        return reports

    reader_proc = env.process(reader())
    env.process(mover())
    env.run(until=reader_proc)
    assert failures == []
    assert len(reads_done) == 200


def test_concurrent_writes_drain_then_proceed(migration_cluster):
    """Writers block briefly on the partition read-lock, then land on
    the new owner; no write is lost."""
    env, cluster = migration_cluster
    write_errors = []

    def writer():
        for i in range(60):
            txn = cluster.txns.begin()
            key = 350 + (i % 50)  # upper range: moves to a target
            try:
                yield from cluster.master.update(
                    "kv", key, (key, "w%03d" % i), txn
                )
                yield from cluster.txns.commit(txn)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                write_errors.append(repr(exc))
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
            yield env.timeout(0.1)

    def mover():
        scheme = PhysiologicalPartitioning()
        yield from cluster.power_on(2)
        yield from cluster.power_on(3)
        yield from scheme.migrate_fraction(
            cluster, "kv", cluster.workers[0],
            [cluster.worker(2), cluster.worker(3)], 0.5,
        )

    writer_proc = env.process(writer())
    env.process(mover())
    env.run(until=writer_proc)
    assert write_errors == []
    assert read_all(env, cluster) == []


def test_reports_record_bytes_and_segments(migration_cluster):
    env, cluster = migration_cluster
    reports = migrate(env, cluster)
    assert sum(r.segments_moved for r in reports) > 0
    assert sum(r.records_moved for r in reports) >= 150
    assert all(r.scheme == "physiological" for r in reports)
