"""Rebalancer tests: scale-out, scale-in, helpers, policy loop."""

import pytest

from repro.core import PhysiologicalPartitioning, Rebalancer
from repro.cluster import PolicyThresholds, ThresholdPolicy
from tests.core.conftest import read_all


def make_rebalancer(cluster):
    return Rebalancer(cluster, PhysiologicalPartitioning())


def test_scale_out_powers_on_targets_and_migrates(migration_cluster):
    env, cluster = migration_cluster
    rebalancer = make_rebalancer(cluster)

    def go():
        yield from rebalancer.scale_out(
            ["kv"], source_ids=[0], target_ids=[2, 3], fraction=0.5
        )

    env.run(until=env.process(go()))
    assert cluster.worker(2).is_active
    assert cluster.worker(3).is_active
    assert rebalancer.scale_out_count == 1
    assert sum(r.records_moved for r in rebalancer.reports) >= 150
    assert read_all(env, cluster) == []


def test_scale_in_returns_data_and_powers_off(migration_cluster):
    env, cluster = migration_cluster
    rebalancer = make_rebalancer(cluster)

    def go():
        # First spread to node 2, then pull back and shut node 2 down.
        yield from rebalancer.scale_out(
            ["kv"], source_ids=[0], target_ids=[2], fraction=0.5
        )
        yield from rebalancer.scale_in("kv", victim_id=2, receiver_id=0)

    env.run(until=env.process(go()))
    assert not cluster.worker(2).is_active
    assert read_all(env, cluster) == []
    assert rebalancer.scale_in_count == 1


def test_helpers_engage_and_disengage(migration_cluster):
    env, cluster = migration_cluster
    rebalancer = make_rebalancer(cluster)
    source = cluster.workers[0]
    observed = {}

    def go():
        helper = cluster.worker(3)
        yield from rebalancer.helper_protocol.engage(
            [source], [3], remote_buffer_pages=64
        )
        observed["shipping"] = source.wal.is_shipping
        observed["remote_buffer"] = source.buffer.remote_extension is not None
        observed["helper_active"] = helper.is_active
        yield from rebalancer.helper_protocol.disengage()

    env.run(until=env.process(go()))
    assert observed == {
        "shipping": True, "remote_buffer": True, "helper_active": True,
    }
    assert not source.wal.is_shipping
    assert source.buffer.remote_extension is None
    assert not cluster.worker(3).is_active  # powered back down


def test_scale_out_with_helpers_cleans_up(migration_cluster):
    env, cluster = migration_cluster
    rebalancer = make_rebalancer(cluster)

    def go():
        yield from rebalancer.scale_out(
            ["kv"], source_ids=[0], target_ids=[2], fraction=0.5, helpers=[3]
        )

    env.run(until=env.process(go()))
    assert not cluster.workers[0].wal.is_shipping
    assert not cluster.worker(3).is_active
    assert read_all(env, cluster) == []


def test_helper_use_increases_power_draw(migration_cluster):
    """Fig. 8c's mechanism: helpers add watts while engaged."""
    env, cluster = migration_cluster
    rebalancer = make_rebalancer(cluster)
    watts = {}

    def go():
        watts["before"] = cluster.current_watts()
        yield from rebalancer.helper_protocol.engage(
            [cluster.workers[0]], [3]
        )
        watts["during"] = cluster.current_watts()
        yield from rebalancer.helper_protocol.disengage()
        yield env.timeout(5)
        watts["after"] = cluster.current_watts()

    env.run(until=env.process(go()))
    assert watts["during"] > watts["before"] + 10
    assert watts["after"] < watts["during"]


def test_policy_loop_scales_out_under_load(migration_cluster):
    env, cluster = migration_cluster
    policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=1))
    rebalancer = Rebalancer(
        cluster, PhysiologicalPartitioning(), policy=policy
    )

    peak_active = []

    def hog():
        # Saturate node 0's CPU so the policy sees > 80 % utilisation.
        while cluster.active_node_count < 3:
            yield from cluster.workers[0].cpu.execute(0.5)
        peak_active.append(cluster.active_node_count)

    def driver():
        for _ in range(2):
            env.process(hog())
        env.process(rebalancer.run_policy_loop(["kv"], interval=2.0))
        yield env.timeout(120)
        rebalancer.stop()

    env.run(until=env.process(driver()))
    # A standby node was recruited while the load lasted (the loop may
    # legitimately scale back in after the hog stops).
    assert peak_active and max(peak_active) >= 3
    assert rebalancer.scale_out_count >= 1
    assert read_all(env, cluster) == []


def test_policy_loop_scales_in_when_idle(migration_cluster):
    env, cluster = migration_cluster
    policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=2))
    rebalancer = Rebalancer(
        cluster, PhysiologicalPartitioning(), policy=policy
    )

    def driver():
        # Spread data onto node 1 first so there is something to pull in.
        yield from rebalancer.scale_out(
            ["kv"], source_ids=[0], target_ids=[1], fraction=0.5
        )
        env.process(rebalancer.run_policy_loop(["kv"], interval=2.0))
        yield env.timeout(120)
        rebalancer.stop()

    env.run(until=env.process(driver()))
    # Idle cluster: node 1 was quiesced and shut down.
    assert cluster.active_node_count == 1
    assert read_all(env, cluster) == []
