"""Tests for scheme selection utilities and key successor logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Cluster, Column, Environment, Schema
from repro.cluster.catalog import successor
from repro.core.schemes import (
    MoveReport,
    ordered_segments,
    segment_chunks,
    select_upper_segments,
    split_key_at_fraction,
)


class TestSuccessor:
    def test_int(self):
        assert successor(5) == 6

    def test_str(self):
        assert successor("abc") == "abc\x00"
        assert "abc" < successor("abc") < "abd"

    def test_tuple(self):
        assert successor((1, 2)) == (1, 3)
        assert (1, 2) < successor((1, 2)) < (1, 3, 0)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            successor(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            successor(3.5)

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_property_int_strictly_greater_and_tight(self, k):
        s = successor(k)
        assert s > k
        assert not any(k < x < s for x in (k, s))  # adjacent ints


def loaded_partition(rows=200, segment_max_pages=4):
    env = Environment()
    cluster = Cluster(env, node_count=2, initially_active=1,
                      buffer_pages_per_node=256,
                      segment_max_pages=segment_max_pages, page_bytes=1024)
    schema = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))
    cluster.master.create_table("t", schema, owner=cluster.workers[0])
    partition = list(cluster.workers[0].partitions.values())[0]

    def load():
        txn = cluster.txns.begin()
        for i in range(rows):
            yield from cluster.master.insert("t", (i, "x" * 30), txn)
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    return partition


class TestSelection:
    def test_ordered_segments_ascending(self):
        partition = loaded_partition()
        entries = ordered_segments(partition)
        assert len(entries) > 2
        lows = [r.low for r, _s in entries]
        assert lows[1:] == sorted(lows[1:])  # first low may be None

    def test_select_upper_segments_fraction(self):
        partition = loaded_partition()
        picked = select_upper_segments(partition, 0.5)
        total = partition.record_count
        count = sum(s.record_count for _r, s in picked)
        # At least the goal, at most one segment more.
        assert count >= total * 0.5
        assert count <= total * 0.5 + max(s.record_count for _r, s in picked)

    def test_select_validation(self):
        partition = loaded_partition()
        with pytest.raises(ValueError):
            select_upper_segments(partition, 0.0)
        with pytest.raises(ValueError):
            select_upper_segments(partition, 1.5)

    def test_select_full_fraction_takes_everything(self):
        partition = loaded_partition()
        picked = select_upper_segments(partition, 1.0)
        assert sum(s.record_count for _r, s in picked) == partition.record_count

    def test_split_key_at_fraction(self):
        partition = loaded_partition(rows=200)
        key = split_key_at_fraction(partition, 0.5)
        assert key is not None
        assert 80 <= key <= 120  # ~the median of 0..199

    def test_split_key_empty_partition(self):
        partition = loaded_partition(rows=200)
        # Fabricate emptiness via a fresh partition object.
        empty = loaded_partition(rows=1)
        # Single-record partition: fraction 1.0 -> lowest key.
        assert split_key_at_fraction(empty, 1.0) == 0

    def test_segment_chunks_cover_selection_contiguously(self):
        partition = loaded_partition()
        chunks = segment_chunks(partition, 0.5, 2)
        assert 1 <= len(chunks) <= 2
        flat = [s.segment_id for chunk in chunks for _r, s in chunk]
        assert len(set(flat)) == len(flat)
        # Chunk boundaries are contiguous in key order.
        all_selected = [s.segment_id for _r, s in
                        select_upper_segments(partition, 0.5)]
        assert flat == all_selected

    def test_segment_chunks_more_targets_than_segments(self):
        partition = loaded_partition(rows=20)
        chunks = segment_chunks(partition, 1.0, 10)
        assert all(chunk for chunk in chunks)


class TestMoveReport:
    def test_duration(self):
        report = MoveReport("x", "t", 0, 1, started_at=5.0, finished_at=9.0)
        assert report.duration == 4.0
