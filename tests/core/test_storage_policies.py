"""Tests for the storage-side policies of Sect. 3.4: local disk
balancing and the out-of-space protocol."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.cluster import PolicyThresholds, ThresholdPolicy
from repro.core import (
    PhysiologicalPartitioning,
    Rebalancer,
    balance_local_disks,
    move_extent_local,
)
from repro.hardware import SSD_SPEC
from repro.hardware.disk import DiskFailedError, DiskSpec
from repro.storage.disk_space import OutOfDiskSpaceError
from repro.workload.tpcc_gen import fast_insert

SCHEMA = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))


def build(disk_specs, segment_max_pages=2, node_count=2, active=2):
    env = Environment()
    cluster = Cluster(env, node_count=node_count, initially_active=active,
                      disk_specs=disk_specs,
                      buffer_pages_per_node=256,
                      segment_max_pages=segment_max_pages, page_bytes=1024)
    cluster.master.create_table("kv", SCHEMA, owner=cluster.workers[0])
    partition = list(cluster.workers[0].partitions.values())[0]
    return env, cluster, partition


class TestLocalDiskBalancing:
    def test_move_extent_local(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        for i in range(30):
            fast_insert(worker, partition, (i, "x" * 30))
        segment = next(iter(partition.segments.values()))
        source = worker.disk_space.disk_of(segment.segment_id)
        target = next(d for d in worker.disk_space.disks if d is not source)

        def go():
            nbytes = yield from move_extent_local(
                cluster, worker, segment, target
            )
            return nbytes

        nbytes = env.run(until=env.process(go()))
        assert nbytes > 0
        assert worker.disk_space.disk_of(segment.segment_id) is target
        assert cluster.directory.location(segment.segment_id)[1] is target
        # Moving to the same disk is a no-op.
        again = env.run(until=env.process(go()))
        assert again == 0

    def test_balance_local_disks_evens_extents(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        # Load everything, then cram all extents onto one disk.
        for i in range(200):
            fast_insert(worker, partition, (i, "x" * 30))
        crowded = worker.disk_space.disks[0]
        segments = list(partition.segments.values())

        def cram():
            for segment in segments:
                if worker.disk_space.disk_of(segment.segment_id) is not crowded:
                    yield from move_extent_local(
                        cluster, worker, segment, crowded
                    )

        env.run(until=env.process(cram()))
        per_disk_before = [
            worker.disk_space.used_bytes(d) for d in worker.disk_space.disks
        ]
        assert per_disk_before.count(0) == len(per_disk_before) - 1

        def balance():
            moves = yield from balance_local_disks(cluster, worker,
                                                   max_moves=32)
            return moves

        moves = env.run(until=env.process(balance()))
        assert moves >= 2
        used = [worker.disk_space.used_bytes(d)
                for d in worker.disk_space.disks]
        extent = segments[0].extent_bytes
        assert max(used) - min(used) <= extent

    def test_balance_single_disk_is_noop(self):
        env, cluster, partition = build((SSD_SPEC,))
        worker = cluster.workers[0]
        fast_insert(worker, partition, (1, "x"))

        def balance():
            moves = yield from balance_local_disks(cluster, worker)
            return moves

        assert env.run(until=env.process(balance())) == 0


class TestLocalMovesUnderFaults:
    """Local extent moves against failed and full disks: the policy
    must refuse cleanly, never strand a segment halfway."""

    def test_move_to_failed_disk_is_refused_before_any_io(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        for i in range(30):
            fast_insert(worker, partition, (i, "x" * 30))
        segment = next(iter(partition.segments.values()))
        source = worker.disk_space.disk_of(segment.segment_id)
        target = next(d for d in worker.disk_space.disks if d is not source)
        target.fail()
        io_before = source.io_count + target.io_count

        def go():
            yield from move_extent_local(cluster, worker, segment, target)

        with pytest.raises(DiskFailedError):
            env.run(until=env.process(go()))
        # Refused up front: no copy I/O spent, no metadata touched.
        assert source.io_count + target.io_count == io_before
        assert worker.disk_space.disk_of(segment.segment_id) is source
        assert cluster.directory.location(segment.segment_id)[1] is source

    def test_failed_source_disk_surfaces_before_metadata_changes(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        for i in range(30):
            fast_insert(worker, partition, (i, "x" * 30))
        segment = next(iter(partition.segments.values()))
        source = worker.disk_space.disk_of(segment.segment_id)
        target = next(d for d in worker.disk_space.disks if d is not source)
        source.fail()

        def go():
            yield from move_extent_local(cluster, worker, segment, target)

        with pytest.raises(DiskFailedError):
            env.run(until=env.process(go()))
        # The copy read failed, so placement and directory still agree
        # on the (dead) source — recovery's business, not the mover's.
        assert worker.disk_space.disk_of(segment.segment_id) is source
        assert cluster.directory.location(segment.segment_id)[1] is source

    def test_move_to_full_disk_is_refused_up_front(self):
        env, cluster, partition = build((tiny_disk(4), tiny_disk(1)))
        worker = cluster.workers[0]
        for i in range(60):
            fast_insert(worker, partition, (i, "x" * 30))
        big, small = worker.disk_space.disks
        on_big = [
            partition.segments[seg_id]
            for seg_id, disk in worker.disk_space.placements()
            if disk is big
        ]
        assert len(on_big) >= 2
        filler, refused = on_big[0], on_big[1]

        def fill():
            yield from move_extent_local(cluster, worker, filler, small)

        env.run(until=env.process(fill()))
        assert worker.disk_space.free_bytes(small) < refused.extent_bytes
        io_before = big.io_count + small.io_count

        def go():
            yield from move_extent_local(cluster, worker, refused, small)

        with pytest.raises(OutOfDiskSpaceError):
            env.run(until=env.process(go()))
        assert big.io_count + small.io_count == io_before
        assert worker.disk_space.disk_of(refused.segment_id) is big
        assert cluster.directory.location(refused.segment_id)[1] is big

    def test_balance_skips_failed_disks(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        for i in range(200):
            fast_insert(worker, partition, (i, "x" * 30))
        crowded = worker.disk_space.disks[0]
        segments = list(partition.segments.values())

        def cram():
            for segment in segments:
                if worker.disk_space.disk_of(segment.segment_id) is not crowded:
                    yield from move_extent_local(
                        cluster, worker, segment, crowded
                    )

        env.run(until=env.process(cram()))
        dead = worker.disk_space.disks[1]
        survivor = worker.disk_space.disks[2]
        dead.fail()

        def balance():
            moves = yield from balance_local_disks(cluster, worker,
                                                   max_moves=32)
            return moves

        moves = env.run(until=env.process(balance()))
        assert moves >= 1
        # Extents spread over the two healthy disks only.
        assert worker.disk_space.used_bytes(dead) == 0
        extent = segments[0].extent_bytes
        spread = abs(worker.disk_space.used_bytes(crowded)
                     - worker.disk_space.used_bytes(survivor))
        assert spread <= extent

    def test_balance_stops_when_only_one_healthy_disk_remains(self):
        env, cluster, partition = build((SSD_SPEC, SSD_SPEC))
        worker = cluster.workers[0]
        for i in range(60):
            fast_insert(worker, partition, (i, "x" * 30))
        worker.disk_space.disks[1].fail()

        def balance():
            moves = yield from balance_local_disks(cluster, worker)
            return moves

        assert env.run(until=env.process(balance())) == 0


def tiny_disk(capacity_extents, segment_max_pages=2, page_bytes=1024):
    return DiskSpec(
        kind="ssd", access_seconds=SSD_SPEC.access_seconds,
        bandwidth_bytes_per_s=SSD_SPEC.bandwidth_bytes_per_s,
        capacity_bytes=capacity_extents * segment_max_pages * page_bytes,
        idle_watts=0.3, active_watts=0.4,
    )


class TestOutOfSpaceProtocol:
    def test_policy_flags_space_pressure(self):
        env, cluster, partition = build((tiny_disk(10),))
        worker = cluster.workers[0]
        for i in range(200):  # ~9 of 10 extents
            fast_insert(worker, partition, (i, "x" * 30))
        sample = cluster.monitor.sample_node(worker)
        assert sample.storage_used_fraction > 0.85
        policy = ThresholdPolicy(PolicyThresholds(consecutive_samples=1,
                                                  storage_upper=0.8))
        decision = policy.observe([sample])
        assert decision.wants_space_relief

    def test_policy_loop_relieves_space_pressure(self):
        env, cluster, partition = build(
            (tiny_disk(10),), node_count=2, active=2
        )
        worker = cluster.workers[0]
        for i in range(200):
            fast_insert(worker, partition, (i, "x" * 30))
        rebalancer = Rebalancer(
            cluster, PhysiologicalPartitioning(),
            policy=ThresholdPolicy(PolicyThresholds(consecutive_samples=1,
                                                    storage_upper=0.8)),
        )
        env.process(rebalancer.run_policy_loop(["kv"], interval=3.0))

        def window():
            yield env.timeout(30.0)

        env.run(until=env.process(window()))
        rebalancer.stop()
        sample = cluster.monitor.sample_node(worker)
        # Half the data went to the node with free space.
        assert sample.storage_used_fraction < 0.7
        assert len(cluster.workers[1].partitions) >= 1

        # And everything is still readable.
        missing = []

        def verify():
            txn = cluster.txns.begin()
            for i in range(200):
                row = yield from cluster.master.read("kv", i, txn)
                if row is None:
                    missing.append(i)
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(verify()))
        assert missing == []
