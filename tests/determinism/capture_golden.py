"""Capture the determinism goldens.

Run from the repository root::

    PYTHONPATH=src python -m tests.determinism.capture_golden

The committed goldens were captured on the *pre-optimization* kernel
(commit with the heap-only event loop), so the determinism tests prove
the fast paths replay the original event order.  Re-capture only when
a deliberate, understood model change shifts the virtual clock — never
to paper over an unexplained mismatch.
"""

from tests.determinism.harness import (
    chaos_fingerprint,
    fig6_fingerprint,
    save_golden,
)


def main() -> None:
    for name, fn in (("fig6_small", fig6_fingerprint),
                     ("chaos_seed0", chaos_fingerprint)):
        fingerprint = fn()
        path = save_golden(name, fingerprint)
        print(f"{name}: {path} "
              f"(end={fingerprint['end_time']}, "
              f"events={fingerprint['events_processed']})")


if __name__ == "__main__":
    main()
