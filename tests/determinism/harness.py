"""Determinism harness: fingerprint a run, compare against goldens.

The kernel fast paths (zero-delay deque, synchronous resource grants,
contention-only buffer latches) must be *unobservable on the virtual
clock*: for a fixed seed, the simulated end time, every commit count,
the metrics tables, and even the total number of kernel events must be
identical before and after the optimization.

To pin that down, ``capture_golden.py`` was run on the pre-optimization
kernel (heap-only event loop) and its fingerprints committed under
``tests/determinism/golden/``.  The tests in ``test_determinism.py``
re-run the same seeds on the current kernel and require bit-identical
fingerprints — including a trace of ``(time, events_processed)``
checkpoints sampled every few simulated seconds, which fails loudly if
a fast path drops, duplicates, or reorders-across-time any event.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.chaos_moves import ChaosConfig, run_chaos
from repro.experiments.fig6_schemes import Fig6Config, run_fig6
from repro.workload import TpccConfig

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Checkpoint cadence (simulated seconds) for the event-count trace.
CHECKPOINT_EVERY = 5.0


def tiny_fig6_config() -> Fig6Config:
    """A shrunk fig6: same regime (disk-bound TPC-C + ballast-weighted
    migration), sized so the determinism gate runs in a few seconds."""
    return Fig6Config(
        tpcc=TpccConfig(
            warehouses=4, districts_per_warehouse=4,
            customers_per_district=20, items=200,
            orders_per_district=8, order_lines_per_order=5,
            pad_blob_bytes=4096,
        ),
        clients=4, client_interval=0.4,
        ballast_rows_per_warehouse=1200, ballast_blob_bytes=16 * 1024,
        buffer_pages_per_node=128,
        node_count=6, warmup=20.0, tail=60.0, bucket=10.0,
    )


def tiny_chaos_config() -> ChaosConfig:
    """A shrunk chaos schedule (seed 0): fewer rows, shorter windows."""
    return ChaosConfig(
        seed=0, rows=600, fault_pairs=3,
        warmup=5.0, fault_span=25.0, tail=8.0,
        writers=2, writer_interval=0.5,
    )


def _checkpointer(out: list):
    """An ``instrument`` callback that samples (now, events_processed)."""

    def instrument(env, _cluster):
        def recorder():
            while True:
                yield env.timeout(CHECKPOINT_EVERY)
                out.append([env.now, env.events_processed])

        env.process(recorder(), name="determinism-recorder")
        instrument.env = env

    return instrument


def fig6_fingerprint(config: Fig6Config | None = None) -> dict:
    """Everything the virtual clock is allowed to determine, in one dict."""
    config = config or tiny_fig6_config()
    checkpoints: list = []
    instrument = _checkpointer(checkpoints)
    result = run_fig6("physiological", config, instrument=instrument)
    env = instrument.env
    return _normalise({
        "checkpoints": checkpoints,
        "end_time": env.now,
        "events_processed": env.events_processed,
        "total_completed": result.total_completed,
        "total_failed": result.total_failed,
        "conflicts": result.conflicts,
        "bytes_moved": result.bytes_moved,
        "records_moved": result.records_moved,
        "migration_seconds": result.migration_seconds,
        "table": result.to_table(),
    })


def chaos_fingerprint(config: ChaosConfig | None = None) -> dict:
    config = config or tiny_chaos_config()
    checkpoints: list = []
    instrument = _checkpointer(checkpoints)
    result = run_chaos(config, instrument=instrument)
    env = instrument.env
    return _normalise({
        "checkpoints": checkpoints,
        "end_time": env.now,
        "events_processed": env.events_processed,
        "violations": result.violations,
        "faults": result.faults,
        "move_summary": result.move_summary,
        "resumed_move_completed": result.resumed_move_completed,
        "acked_writes": result.acked_writes,
        "exhausted_writes": result.exhausted_writes,
        "degraded_steps": result.degraded_steps,
        "resume_rounds_used": result.resume_rounds_used,
    })


def _normalise(obj):
    """JSON round-trip so in-memory and golden fingerprints compare
    structurally (tuples become lists, dict keys become strings)."""
    return json.loads(json.dumps(obj))


def load_golden(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json") as fh:
        return json.load(fh)


def save_golden(name: str, fingerprint: dict) -> pathlib.Path:
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(fingerprint, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
