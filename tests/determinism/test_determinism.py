"""Determinism gate for the kernel fast paths.

The goldens under ``golden/`` were captured on the pre-optimization
kernel (heap-only event loop, per-page latch Resources, O(n) victim
scan).  These tests re-run the same seeded experiments on the current
kernel and require bit-identical fingerprints: simulated end time,
commit counts, metrics tables, and a ``(time, events_processed)``
checkpoint trace.  A fast path that changed anything the virtual clock
can see fails here.
"""

import pytest

from tests.determinism.harness import (
    chaos_fingerprint,
    fig6_fingerprint,
    load_golden,
)


@pytest.fixture(scope="module")
def fig6_fp():
    return fig6_fingerprint()


@pytest.fixture(scope="module")
def chaos_fp():
    return chaos_fingerprint()


class TestFig6SmallGolden:
    def test_checkpoint_trace_matches_pre_optimization_order(self, fig6_fp):
        golden = load_golden("fig6_small")
        assert fig6_fp["checkpoints"] == golden["checkpoints"]

    def test_clock_and_event_totals(self, fig6_fp):
        golden = load_golden("fig6_small")
        assert fig6_fp["end_time"] == golden["end_time"]
        assert fig6_fp["events_processed"] == golden["events_processed"]
        assert fig6_fp["migration_seconds"] == golden["migration_seconds"]

    def test_model_visible_metrics(self, fig6_fp):
        golden = load_golden("fig6_small")
        for key in ("total_completed", "total_failed", "conflicts",
                    "bytes_moved", "records_moved"):
            assert fig6_fp[key] == golden[key], key

    def test_rendered_table_identical(self, fig6_fp):
        assert fig6_fp["table"] == load_golden("fig6_small")["table"]

    def test_repeatable_within_process(self, fig6_fp):
        assert fig6_fingerprint() == fig6_fp


class TestChaosSeedGolden:
    def test_checkpoint_trace_matches_pre_optimization_order(self, chaos_fp):
        golden = load_golden("chaos_seed0")
        assert chaos_fp["checkpoints"] == golden["checkpoints"]

    def test_full_fingerprint(self, chaos_fp):
        assert chaos_fp == load_golden("chaos_seed0")

    def test_repeatable_within_process(self, chaos_fp):
        assert chaos_fingerprint() == chaos_fp
