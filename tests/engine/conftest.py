"""Shared fixtures: a loaded two-node cluster for operator tests."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.engine import ExecContext


@pytest.fixture()
def loaded():
    """A cluster with a 200-row table owned by node 0, plus node 1 up."""
    env = Environment()
    cluster = Cluster(
        env, node_count=3, initially_active=2,
        buffer_pages_per_node=512, segment_max_pages=64,
    )
    schema = Schema(
        [Column("id"), Column("grp"), Column("val", "float"),
         Column("pad", "str", width=40)],
        key=("id",),
    )
    master = cluster.master
    master.create_table("items", schema, owner=cluster.workers[0])

    def load():
        txn = cluster.txns.begin()
        for i in range(200):
            yield from master.insert(
                "items", (i, i % 5, float(i), "x" * 20), txn
            )
        yield from cluster.workers[0].commit(txn)

    env.run(until=env.process(load()))
    worker = cluster.workers[0]
    partition = list(worker.partitions.values())[0]
    return env, cluster, worker, partition


def make_ctx(env, vector_size=64, txn=None):
    return ExecContext(env=env, txn=txn, vector_size=vector_size)
