"""Exchange and prefetch-buffer tests — the Fig. 1 mechanics."""

import pytest

from repro.engine import PrefetchBuffer, Project, RemoteExchange, TableScan
from repro.metrics import CostBreakdown
from tests.engine.conftest import make_ctx


def make_exchange(env, cluster, worker, partition, ctx):
    consumer = cluster.workers[1]
    scan = TableScan(ctx, worker, partition)
    return RemoteExchange(
        ctx, scan, cluster.network,
        producer_cpu=worker.cpu, producer_port=worker.port,
        consumer_cpu=consumer.cpu, consumer_port=consumer.port,
    ), consumer


def drain(env, op):
    return env.run(until=env.process(op.drain()))


def test_exchange_delivers_all_rows(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env, vector_size=32)
    exchange, _consumer = make_exchange(env, cluster, worker, partition, ctx)
    rows = drain(env, exchange)
    assert sorted(r[0] for r in rows) == list(range(200))
    assert exchange.bytes_shipped > 0
    assert exchange.calls >= 200 // 32


def test_exchange_charges_network_time(loaded):
    env, cluster, worker, partition = loaded
    breakdown = CostBreakdown()
    ctx = make_ctx(env, vector_size=32)
    ctx.breakdown = breakdown
    exchange, _ = make_exchange(env, cluster, worker, partition, ctx)
    drain(env, exchange)
    assert breakdown.network_io > 0


def test_single_record_exchange_is_much_slower(loaded):
    """Fig. 1's third bar: one record per call collapses throughput."""
    env, cluster, worker, partition = loaded

    ctx_vec = make_ctx(env, vector_size=64)
    exchange, _ = make_exchange(env, cluster, worker, partition, ctx_vec)
    t0 = env.now
    drain(env, exchange)
    vectorised_time = env.now - t0

    ctx_one = make_ctx(env, vector_size=1)
    exchange_one, _ = make_exchange(env, cluster, worker, partition, ctx_one)
    t0 = env.now
    drain(env, exchange_one)
    single_time = env.now - t0

    assert single_time > 5 * vectorised_time


def test_prefetch_buffer_preserves_rows(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env, vector_size=32)
    exchange, _ = make_exchange(env, cluster, worker, partition, ctx)
    buffered = PrefetchBuffer(ctx, exchange, depth=2)
    rows = drain(env, buffered)
    assert sorted(r[0] for r in rows) == list(range(200))
    assert buffered.vectors_prefetched > 0


def test_prefetch_buffer_depth_validation(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    with pytest.raises(ValueError):
        PrefetchBuffer(ctx, scan, depth=0)


def test_prefetch_buffer_overlaps_consumer_work(loaded):
    """With a slow consumer, prefetch hides producer+wire latency: the
    buffered pipeline finishes faster than the unbuffered one."""
    env, cluster, worker, partition = loaded
    consumer = cluster.workers[1]

    def run_pipeline(use_buffer):
        ctx = make_ctx(env, vector_size=16)
        exchange, _ = make_exchange(env, cluster, worker, partition, ctx)
        source = PrefetchBuffer(ctx, exchange, depth=3) if use_buffer else exchange
        project = Project(ctx, consumer.cpu, source, ["id"])

        def timed():
            t0 = env.now
            yield from project.drain()
            return env.now - t0

        return env.run(until=env.process(timed()))

    unbuffered = run_pipeline(False)
    buffered = run_pipeline(True)
    assert buffered < unbuffered


def test_prefetch_buffer_early_close_terminates_producer(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env, vector_size=8)
    scan = TableScan(ctx, worker, partition)
    buffered = PrefetchBuffer(ctx, scan, depth=2)

    def partial():
        yield from buffered.open()
        yield from buffered.next_vector()
        yield from buffered.close()

    env.run(until=env.process(partial()))
    assert buffered._producer is not None
    assert not buffered._producer.is_alive
