"""Operator correctness tests on a loaded cluster."""

import pytest

from repro.engine import (
    Filter,
    GroupAggregate,
    IndexLookup,
    Limit,
    NestedLoopJoin,
    Project,
    Sort,
    TableScan,
)
from tests.engine.conftest import make_ctx


def drain(env, op):
    return env.run(until=env.process(op.drain()))


def test_table_scan_returns_all_rows(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    rows = drain(env, scan)
    assert len(rows) == 200
    assert sorted(r[0] for r in rows) == list(range(200))
    assert scan.pages_read > 0
    assert scan.rows_produced == 200


def test_table_scan_vector_size_one(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env, vector_size=1)
    scan = TableScan(ctx, worker, partition)

    def probe():
        yield from scan.open()
        first = yield from scan.next_vector()
        second = yield from scan.next_vector()
        yield from scan.close()
        return first, second

    first, second = env.run(until=env.process(probe()))
    assert len(first) == 1
    assert len(second) == 1


def test_table_scan_respects_mvcc_snapshot(loaded):
    env, cluster, worker, partition = loaded
    reader = cluster.txns.begin()
    master = cluster.master

    def mutate_then_scan():
        writer = cluster.txns.begin()
        yield from master.insert("items", (999, 0, 0.0, "new"), writer)
        yield from worker.commit(writer)
        ctx = make_ctx(env, txn=reader)
        scan = TableScan(ctx, worker, partition)
        rows = yield from scan.drain()
        return rows

    rows = env.run(until=env.process(mutate_then_scan()))
    # The reader's snapshot predates the insert of key 999.
    assert sorted(r[0] for r in rows) == list(range(200))


def test_index_lookup_hit_and_miss(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    hit = drain(env, IndexLookup(ctx, worker, partition, key=42))
    assert hit == [(42, 2, 42.0, "x" * 20)]
    miss = drain(env, IndexLookup(make_ctx(env), worker, partition, key=4242))
    assert miss == []


def test_project(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    project = Project(ctx, worker.cpu, scan, ["val", "id"])
    rows = drain(env, project)
    assert len(rows) == 200
    assert rows[0] == (float(rows[0][1]), rows[0][1])
    assert [c.name for c in project.output_columns] == ["val", "id"]


def test_project_unknown_column(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    with pytest.raises(KeyError):
        Project(ctx, worker.cpu, scan, ["nope"])


def test_filter(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    keep_even = Filter(ctx, worker.cpu, scan, lambda row: row[0] % 2 == 0)
    rows = drain(env, keep_even)
    assert len(rows) == 100
    assert all(r[0] % 2 == 0 for r in rows)


def test_limit(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env, vector_size=7)
    scan = TableScan(ctx, worker, partition)
    rows = drain(env, Limit(ctx, scan, 10))
    assert len(rows) == 10


def test_limit_validation(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    with pytest.raises(ValueError):
        Limit(ctx, scan, -1)


def test_sort_orders_rows(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    sort = Sort(ctx, worker.cpu, scan, ["val"], reverse=True)
    rows = drain(env, sort)
    values = [r[2] for r in rows]
    assert values == sorted(values, reverse=True)


def test_sort_charges_cpu_time(loaded):
    env, cluster, worker, partition = loaded
    before = worker.cpu.tracker.integral()
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    drain(env, Sort(ctx, worker.cpu, scan, ["id"]))
    assert worker.cpu.tracker.integral() > before


def test_group_aggregate(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    agg = GroupAggregate(
        ctx, worker.cpu, scan, ["grp"],
        [("count", None), ("sum", "val"), ("min", "val"),
         ("max", "val"), ("avg", "val")],
    )
    rows = drain(env, agg)
    assert len(rows) == 5  # groups 0..4
    by_group = {r[0]: r for r in rows}
    # Group 0 holds ids 0,5,...,195.
    expected_ids = list(range(0, 200, 5))
    assert by_group[0][1] == len(expected_ids)
    assert by_group[0][2] == pytest.approx(sum(float(i) for i in expected_ids))
    assert by_group[0][3] == 0.0
    assert by_group[0][4] == 195.0
    assert by_group[0][5] == pytest.approx(sum(expected_ids) / len(expected_ids))


def test_group_aggregate_validation(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    with pytest.raises(ValueError):
        GroupAggregate(ctx, worker.cpu, scan, ["grp"], [("median", "val")])
    with pytest.raises(ValueError):
        GroupAggregate(ctx, worker.cpu, scan, ["grp"], [("sum", None)])


def test_nested_loop_join(loaded):
    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    left = TableScan(ctx, worker, partition)
    left_limited = Limit(ctx, left, 10)
    right = Limit(ctx, TableScan(ctx, worker, partition), 10)
    join = NestedLoopJoin(
        ctx, worker.cpu, left_limited, right,
        predicate=lambda l, r: l[0] == r[0],
    )
    rows = drain(env, join)
    assert len(rows) == 10
    for row in rows:
        assert row[0] == row[4]  # id == id


def test_scan_buffer_hits_on_second_pass(loaded):
    env, cluster, worker, partition = loaded
    drain(env, TableScan(make_ctx(env), worker, partition))
    misses_after_first = worker.buffer.misses
    drain(env, TableScan(make_ctx(env), worker, partition))
    assert worker.buffer.misses == misses_after_first  # all hits
    assert worker.buffer.hits > 0


def test_hash_join(loaded):
    from repro.engine import HashJoin, Limit

    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    left = Limit(ctx, TableScan(ctx, worker, partition), 20)
    right = Limit(ctx, TableScan(ctx, worker, partition), 50)
    join = HashJoin(ctx, worker.cpu, left, right, ["id"], ["id"])
    rows = drain(env, join)
    assert len(rows) == 20
    for row in rows:
        assert row[0] == row[4]
    assert join.build_rows == 50
    assert join.probe_rows == 20


def test_hash_join_on_group_column(loaded):
    from repro.engine import HashJoin, Limit

    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    left = Limit(ctx, TableScan(ctx, worker, partition), 5)
    right = TableScan(ctx, worker, partition)
    join = HashJoin(ctx, worker.cpu, left, right, ["grp"], ["grp"])
    rows = drain(env, join)
    # Each of the 5 probe rows matches 40 build rows (200 / 5 groups).
    assert len(rows) == 5 * 40


def test_hash_join_validation(loaded):
    from repro.engine import HashJoin

    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    scan = TableScan(ctx, worker, partition)
    with pytest.raises(ValueError):
        HashJoin(ctx, worker.cpu, scan, scan, ["id"], [])


def test_hash_join_no_matches(loaded):
    from repro.engine import Filter, HashJoin, Limit

    env, cluster, worker, partition = loaded
    ctx = make_ctx(env)
    left = Filter(ctx, worker.cpu, TableScan(ctx, worker, partition),
                  lambda r: r[0] < 3)
    right = Filter(ctx, worker.cpu, TableScan(ctx, worker, partition),
                   lambda r: r[0] > 100)
    join = HashJoin(ctx, worker.cpu, left, right, ["id"], ["id"])
    rows = drain(env, join)
    assert rows == []
