"""Tests for plan construction helpers and the range index scan."""

import pytest

from repro.engine import RangeIndexScan
from repro.engine.planner import (
    exchange_between,
    pick_offload_target,
    plan_scan_project,
    plan_scan_sort,
    run_plan,
)
from tests.engine.conftest import make_ctx


def drain(env, op):
    return env.run(until=env.process(op.drain()))


class TestRangeIndexScan:
    def test_range_scan_returns_ordered_rows(self, loaded):
        env, cluster, worker, partition = loaded
        ctx = make_ctx(env)
        scan = RangeIndexScan(ctx, worker, partition, lo=50, hi=60)
        rows = drain(env, scan)
        assert [r[0] for r in rows] == list(range(50, 60))

    def test_unbounded_range(self, loaded):
        env, cluster, worker, partition = loaded
        ctx = make_ctx(env)
        rows = drain(env, RangeIndexScan(ctx, worker, partition))
        assert len(rows) == 200

    def test_segment_pruning_counts(self, loaded):
        env, cluster, worker, partition = loaded
        if partition.segment_count < 2:
            pytest.skip("needs multiple segments to show pruning")
        ctx = make_ctx(env)
        scan = RangeIndexScan(ctx, worker, partition, lo=0, hi=5)
        drain(env, scan)
        assert scan.segments_scanned < partition.segment_count
        assert scan.segments_pruned >= 1

    def test_empty_range(self, loaded):
        env, cluster, worker, partition = loaded
        ctx = make_ctx(env)
        rows = drain(env, RangeIndexScan(ctx, worker, partition,
                                         lo=5000, hi=6000))
        assert rows == []

    def test_respects_mvcc_snapshot(self, loaded):
        env, cluster, worker, partition = loaded
        reader = cluster.txns.begin()

        def mutate_then_scan():
            writer = cluster.txns.begin()
            yield from cluster.master.insert(
                "items", (500, 0, 0.0, "new"), writer
            )
            yield from cluster.txns.commit(writer)
            ctx = make_ctx(env, txn=reader)
            scan = RangeIndexScan(ctx, worker, partition, lo=400, hi=600)
            rows = yield from scan.drain()
            return rows

        rows = env.run(until=env.process(mutate_then_scan()))
        assert all(r[0] != 500 for r in rows)


class TestPlanner:
    def test_exchange_between_same_node_is_identity(self, loaded):
        env, cluster, worker, partition = loaded
        from repro.engine import TableScan

        ctx = make_ctx(env)
        scan = TableScan(ctx, worker, partition)
        assert exchange_between(ctx, cluster, scan, worker, worker) is scan

    def test_exchange_between_nodes_wraps(self, loaded):
        env, cluster, worker, partition = loaded
        from repro.engine import RemoteExchange, TableScan

        ctx = make_ctx(env)
        scan = TableScan(ctx, worker, partition)
        wrapped = exchange_between(
            ctx, cluster, scan, worker, cluster.workers[1]
        )
        assert isinstance(wrapped, RemoteExchange)

    def test_prefetch_depth_adds_buffer(self, loaded):
        env, cluster, worker, partition = loaded
        from repro.engine import PrefetchBuffer, TableScan

        ctx = make_ctx(env)
        scan = TableScan(ctx, worker, partition)
        wrapped = exchange_between(
            ctx, cluster, scan, worker, cluster.workers[1], prefetch_depth=2
        )
        assert isinstance(wrapped, PrefetchBuffer)

    def test_plan_scan_project_rows(self, loaded):
        env, cluster, worker, partition = loaded
        ctx = make_ctx(env)
        plan = plan_scan_project(
            ctx, cluster, worker, partition, ["id"],
            project_on=cluster.workers[1],
        )
        rows = env.run(until=env.process(run_plan(env, plan)))
        assert sorted(r[0] for r in rows) == list(range(200))

    def test_plan_scan_sort_rows(self, loaded):
        env, cluster, worker, partition = loaded
        ctx = make_ctx(env)
        plan = plan_scan_sort(
            ctx, cluster, worker, partition, ["val"],
            sort_on=cluster.workers[1],
        )
        rows = drain(env, plan)
        values = [r[2] for r in rows]
        assert values == sorted(values)

    def test_pick_offload_target_prefers_idle_node(self, loaded):
        env, cluster, worker, partition = loaded
        target = pick_offload_target(cluster, worker)
        assert target is not None
        assert target is not worker

    def test_pick_offload_target_none_when_alone(self):
        from repro import Cluster, Environment

        env = Environment()
        cluster = Cluster(env, node_count=2, initially_active=1,
                          buffer_pages_per_node=64)
        assert pick_offload_target(cluster, cluster.workers[0]) is None

    def test_pick_offload_with_monitor_keeps_work_local_when_cool(self, loaded):
        env, cluster, worker, partition = loaded
        cluster.monitor.collect()  # checkpoint away the loading phase

        def idle():
            yield env.timeout(10.0)

        env.run(until=env.process(idle()))
        cluster.monitor.collect()  # a genuinely idle window
        target = pick_offload_target(cluster, worker, cluster.monitor)
        assert target is None  # owner is not hotter than candidates
