"""Audited experiment smokes: the history recorder rides a chaos run
and a failover run end to end, and the checkers certify both clean.
These are the pytest twins of CI's ``--audit`` CLI gates."""

import dataclasses

import pytest

from repro.experiments.chaos_moves import ChaosConfig, run_chaos
from repro.experiments.fig9_failover import quick_fig9_config, run_fig9_single

# Consistent with tier-1's global --timeout=600 (enforced where
# pytest-timeout is installed; inert otherwise).
pytestmark = pytest.mark.timeout(600)


def test_audited_chaos_run_is_clean():
    result = run_chaos(config=ChaosConfig(audit=True), seed=0)
    assert result.audited
    assert result.ok, result.violations + result.anomalies
    assert result.anomalies == []
    assert result.history_stats["ops_recorded"] > 0
    assert result.history_stats["ops_dropped"] == 0
    assert result.history_stats["coverage_checkpoints"] >= 2
    assert "clean" in result.to_row()


def test_audited_failover_run_is_clean():
    config = dataclasses.replace(quick_fig9_config(), audit=True)
    result = run_fig9_single(2, config)
    assert result.audited
    assert result.anomalies == []
    assert result.lost_commits == 0
    assert result.history_stats["ops_recorded"] > 0
