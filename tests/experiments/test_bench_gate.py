"""Tests for scripts/check_bench_regression.py and the fig6 scale profile.

The bench gate is CI's only defence against a change eating back the
kernel work, and the fingerprint rule is its only defence against
*environment drift* masquerading as a regression (PR 8 had unchanged
code breach 27–49% purely from a machine change) — both behaviours are
pinned here.
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parents[2]
           / "scripts" / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _bench_json(means: dict[str, float], fingerprint: dict | None = None) -> dict:
    data = {
        "machine_info": {
            "python_version": "3.11.7",
            "system": "Linux",
            "machine": "x86_64",
            "cpu": {"count": 1},
        },
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ],
    }
    if fingerprint is not None:
        data["environment_fingerprint"] = fingerprint
    return data


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def test_regression_fails_on_matching_fingerprint(tmp_path):
    baseline = _write(tmp_path, "base.json", _bench_json({"t": 1.0}))
    current = _write(tmp_path, "cur.json", _bench_json({"t": 1.5}))
    assert gate.main([baseline, current]) == 1


def test_within_threshold_passes(tmp_path):
    baseline = _write(tmp_path, "base.json", _bench_json({"t": 1.0}))
    current = _write(tmp_path, "cur.json", _bench_json({"t": 1.2}))
    assert gate.main([baseline, current]) == 0


def test_regression_only_warns_on_fingerprint_mismatch(tmp_path):
    other = {"python": "3.12.0", "platform": "Linux-x86_64", "cpu_count": 8}
    baseline = _write(tmp_path, "base.json",
                      _bench_json({"t": 1.0}, fingerprint=other))
    current = _write(tmp_path, "cur.json", _bench_json({"t": 10.0}))
    assert gate.main([baseline, current]) == 0


def test_stamp_writes_fingerprint(tmp_path):
    path = _write(tmp_path, "base.json", _bench_json({"t": 1.0}))
    assert gate.main(["--stamp", path]) == 0
    stamped = json.loads(pathlib.Path(path).read_text())
    assert stamped["environment_fingerprint"] == {
        "python": "3.11.7", "platform": "Linux-x86_64", "cpu_count": 1,
    }


def test_committed_baselines_are_stamped():
    baselines = (_SCRIPT.parent.parent / "benchmarks" / "baselines").glob("*.json")
    for path in baselines:
        data = json.loads(path.read_text())
        fingerprint = data.get("environment_fingerprint")
        assert fingerprint, f"{path.name} is missing its environment fingerprint"
        assert set(fingerprint) == set(gate.FINGERPRINT_KEYS)


def test_scale_profile_shape():
    from repro.experiments.fig6_schemes import scale_fig6_config

    config = scale_fig6_config(nodes=100, partitions=10_000)
    assert config.node_count == 100
    assert len(config.source_nodes) == len(config.target_nodes) == 50
    assert not set(config.source_nodes) & set(config.target_nodes)
    # ~10 per-warehouse table slices carry the requested partition count.
    assert config.tpcc.warehouses == 1000
    with pytest.raises(ValueError):
        scale_fig6_config(nodes=7)
    with pytest.raises(ValueError):
        scale_fig6_config(nodes=100, partitions=100)
