"""Chaos harness: schedule determinism and the invariant gate on a
few fixed seeds (the full 10-seed sweep runs as a benchmark / CI job)."""

import random

import pytest

from repro.experiments.chaos_moves import (
    ChaosConfig,
    build_schedule,
    render_chaos,
    run_chaos,
    run_chaos_suite,
)

# Consistent with tier-1's global --timeout=600.
pytestmark = pytest.mark.timeout(600)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig()
        a = build_schedule(config, random.Random(42))
        b = build_schedule(config, random.Random(42))
        c = build_schedule(config, random.Random(43))
        assert a == b
        assert a != c

    def test_every_fault_gets_its_recovery_without_overlap(self):
        recover = {"crash": "restart", "sever_link": "restore_link"}
        config = ChaosConfig(fault_pairs=6)
        events = build_schedule(config, random.Random(7))
        assert events and len(events) % 2 == 0
        busy_until = {}
        for (at, kind, node), (rec_at, rec_kind, rec_node) in zip(
            events[0::2], events[1::2]
        ):
            assert rec_kind == recover[kind]
            assert rec_node == node
            assert rec_at > at
            assert config.warmup <= at < config.warmup + config.fault_span
            # Outages on one node never overlap (plus boot headroom).
            assert at >= busy_until.get(node, 0.0)
            busy_until[node] = rec_at + config.boot_seconds + 1.0


class TestInvariantGate:
    def test_single_seed_run_is_clean(self):
        result = run_chaos(seed=0)
        assert result.ok, result.violations
        assert result.faults, "schedule injected nothing"
        assert result.acked_writes > 0
        assert result.move_summary["moves_total"] > 0
        assert result.move_summary["open_moves"] == 0
        assert result.move_summary["open_range_moves"] == 0

    def test_three_seed_suite_holds_invariants_and_resumes(self):
        suite = run_chaos_suite(seeds=(0, 1, 2))
        assert suite.total_violations == 0, suite.to_table()
        # At least one schedule must complete a move through a
        # chunk-level resume — the metric the tentpole promises.
        assert suite.any_resumed_completion
        rendered = render_chaos(suite)
        assert "0 invariant violations" in rendered
        assert "move summary" in rendered

    def test_deterministic_replay(self):
        a = run_chaos(seed=1)
        b = run_chaos(seed=1)
        assert a.faults == b.faults
        assert a.move_summary == b.move_summary
        assert a.acked_writes == b.acked_writes
        assert a.violations == b.violations
