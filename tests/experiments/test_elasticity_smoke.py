"""Elasticity experiment smoke: a compressed audited day must breathe
with the trace, conserve every offered request, and replay
bit-identically."""

import dataclasses

import pytest

from repro.experiments.elasticity import (
    ElasticityConfig,
    render_elasticity,
    run_elasticity,
)

SMOKE = ElasticityConfig(
    day_seconds=240.0,
    min_requests=60_000,
    flash_ramp=20.0, flash_hold=40.0, flash_decay=30.0,
    hint_lead=40.0,
    autoscale_interval=5.0,
    cooldown_intervals=4,
    power_sample_interval=5.0,
    report_buckets=6,
    audit=True,
)


@pytest.fixture(scope="module")
def autoscale_result():
    return run_elasticity(SMOKE)


def test_autoscale_day_is_clean(autoscale_result):
    r = autoscale_result
    assert r.violations == []
    assert r.anomalies == []
    assert r.offered >= SMOKE.min_requests
    assert r.audited


def test_cluster_breathes_with_the_trace(autoscale_result):
    r = autoscale_result
    outs = [row for row in r.events if row[1] == "scale-out"]
    ins = [row for row in r.events if row[1] == "scale-in"]
    assert outs and ins
    assert outs[0][0] < r.peak_time      # recruited before the peak
    assert ins[-1][0] > r.peak_time      # released after it
    assert r.peak_active_nodes > SMOKE.initially_active


def test_admission_conservation(autoscale_result):
    stats = autoscale_result.admission
    assert stats["offered"] == (stats["admitted"] + stats["rejected"]
                                + stats["shed"])
    assert stats["admitted"] == stats["completed"] + stats["abandoned"]
    # The batch tenant's contract is below its offered rate.
    assert stats["rejected"] > 0


def test_replay_is_bit_identical(autoscale_result):
    again = run_elasticity(SMOKE)
    assert again.admission == autoscale_result.admission
    assert again.timeline == autoscale_result.timeline
    assert again.events == autoscale_result.events
    assert again.tenants == autoscale_result.tenants
    assert again.energy_joules == autoscale_result.energy_joules
    assert again.wall_events == autoscale_result.wall_events


def test_static_baseline_uses_more_energy(autoscale_result):
    static = run_elasticity(dataclasses.replace(SMOKE, mode="static"))
    assert static.violations == []
    assert static.events == []
    assert static.final_active_nodes == SMOKE.node_count
    # Full provisioning burns more joules for the same day of demand.
    assert static.energy_joules > autoscale_result.energy_joules
    out = render_elasticity([autoscale_result, static])
    assert "saved by breathing with the trace" in out
    assert "per-tenant latency SLOs" in out


def test_seed_changes_the_run(autoscale_result):
    other = run_elasticity(SMOKE, seed=1)
    assert other.admission != autoscale_result.admission
