"""Endurance harness smoke: the quick configuration holds every
invariant, replays deterministically, and the background daemons are
*transparent* — committed state with checkpoints+vacuum running is
byte-identical to the same workload without them.
"""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.cluster.vacuum import VacuumPolicy, VacuumScheduler
from repro.experiments.endurance import (
    EnduranceConfig,
    quick_endurance_config,
    render_endurance,
    run_endurance,
)
from repro.sim.events import AllOf
from repro.txn.checkpoint import CheckpointManager
from repro.workload.tpcc_gen import fast_insert

# Consistent with tier-1's global --timeout=600.
pytestmark = pytest.mark.timeout(600)


class TestEnduranceSmoke:
    def test_quick_run_holds_every_invariant(self):
        result = run_endurance(quick_endurance_config(), seed=0)
        assert result.ok, result.to_table()
        assert result.acked_writes >= 500
        assert result.audited
        assert result.total_anomalies == 0
        # The chaos schedule actually injured the primary and HA healed.
        assert result.crashes >= 1
        assert result.promotions >= 1
        # The WAL really got recycled (not just bounded by inactivity)...
        assert result.checkpoint_stats["records_recycled"] > 0
        assert result.checkpoint_stats["peak_footprint_slack"] <= \
            2 * quick_endurance_config().wal_segment_records
        # ...and vacuum reclaimed dead versions in bounded chunks.
        assert result.vacuum_stats["reclaimed"] > 0
        # The drill rebuilt from image + bounded suffix.
        assert result.drill["image_rows"] > 0
        rendered = render_endurance(result)
        assert "recovery drill:" in rendered
        assert "ENDURANCE VIOLATION" not in rendered

    def test_same_seed_same_run(self):
        a = run_endurance(quick_endurance_config(), seed=1)
        b = run_endurance(quick_endurance_config(), seed=1)
        assert a.ok and b.ok, (a.violations, b.violations)
        assert a.acked_writes == b.acked_writes
        assert a.crashes == b.crashes
        assert a.promotions == b.promotions
        assert [w.to_row() for w in a.windows] == \
            [w.to_row() for w in b.windows]
        assert a.checkpoint_stats == b.checkpoint_stats
        assert a.vacuum_stats == b.vacuum_stats
        assert a.drill == b.drill

    def test_unmet_commit_target_is_a_violation(self):
        config = quick_endurance_config()
        config = EnduranceConfig(**{
            **config.__dict__, "min_commits": 10_000_000,
        })
        result = run_endurance(config, seed=0)
        assert not result.ok
        assert any("sustained only" in v for v in result.violations)


# -- daemon transparency (the determinism gate) ------------------------------

SCHEMA = Schema([Column("id"), Column("v", "str", width=24)], key=("id",))

ROWS = 60
WRITERS = 4
OPS_PER_WRITER = 40


def _committed_fingerprint(cluster):
    rows = {}
    for worker in cluster.workers:
        for partition in worker.partitions.values():
            if partition.table.name != "kv":
                continue
            for seg in partition.segments.values():
                for _p, _s, version in seg.scan_versions():
                    if version.deleted_ts is None:
                        rows[version.key] = tuple(version.values)
    return tuple(sorted(rows.items()))


def _run_fixed_workload(daemons: bool):
    """Count-based writers over disjoint key ranges: the final committed
    state is fully determined by the op counts, independent of timing —
    so any divergence means a daemon touched live data."""
    env = Environment(seed=7)
    cluster = Cluster(env, node_count=2, initially_active=2,
                      segment_max_pages=16, page_bytes=2048)
    cluster.master.create_table("kv", SCHEMA, owner=cluster.workers[0])
    owner = cluster.workers[0]
    partition = next(iter(owner.partitions.values()))
    for i in range(ROWS):
        fast_insert(owner, partition, (i, "seed-%03d" % i))

    checkpoints = vacuum = None
    if daemons:
        checkpoints = CheckpointManager(cluster, interval=2.0).start()
        vacuum = VacuumScheduler(
            cluster,
            VacuumPolicy(interval=1.5, chunk_versions=8,
                         max_reclaim_per_tick=16),
        ).start()

    span = ROWS // WRITERS

    def writer(wid):
        for seq in range(OPS_PER_WRITER):
            yield env.timeout(0.25)
            key = wid * span + (seq % span)
            txn = cluster.txns.begin()
            yield from cluster.master.update(
                "kv", key, (key, f"w{wid}-s{seq}"), txn
            )
            yield from cluster.txns.commit(txn)

    procs = [env.process(writer(w), name=f"det-writer-{w}")
             for w in range(WRITERS)]
    env.run(until=AllOf(env, procs))
    if daemons:
        checkpoints.stop()
        vacuum.stop()
    env.run()
    stats = {
        "recycled": checkpoints.records_recycled if checkpoints else 0,
        "reclaimed": vacuum.reclaimed if vacuum else 0,
    }
    return _committed_fingerprint(cluster), stats


def test_daemons_do_not_change_committed_state():
    bare, _ = _run_fixed_workload(daemons=False)
    with_daemons, stats = _run_fixed_workload(daemons=True)
    # The daemons genuinely ran (recycled WAL records, reclaimed dead
    # versions) — this is not a vacuous comparison...
    assert stats["recycled"] > 0
    assert stats["reclaimed"] > 0
    # ...and the committed state is identical to the bare run.
    assert with_daemons == bare
    # Sanity: every seeded row still present (updated or pristine).
    assert len(bare) == ROWS
