"""Fast smoke tests of the experiment harness (full-scale shape checks
live in benchmarks/)."""

import dataclasses

import pytest

from repro.experiments import (
    Fig6Config,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig6,
    run_power_validation,
)
from repro.experiments.fig3_mvcc import Fig3Config
from repro.workload import TpccConfig


def test_power_validation_bands():
    result = run_power_validation()
    assert 60 <= result.minimal_watts <= 70
    assert 255 <= result.full_load_watts <= 285
    assert result.node_standby_watts == pytest.approx(2.5)
    assert len(result.proportionality_curve) == 10
    assert "Sect. 3.1" in result.to_table()


def test_fig1_small_preserves_ordering():
    result = run_fig1(rows=4000)
    r = result.records_per_second
    assert r["tbscan_local"] > r["project_local"]
    assert r["project_local"] > r["project_remote_vectorized"]
    assert r["project_remote_buffered"] > r["project_remote_vectorized"]
    assert r["project_remote_single"] < 1200
    assert "Fig. 1" in result.to_table()


def test_fig2_small_crossover():
    result = run_fig2(rows=400, concurrency_levels=(1, 8), window=8.0)
    assert result.local_qps[1] > result.offloaded_qps[1]
    assert result.offloaded_qps[8] > result.local_qps[8]
    assert result.crossover() == 8
    assert "Fig. 2" in result.to_table()


def test_fig3_tiny_cell_shapes():
    config = Fig3Config(
        rows=400, clients=6, partitions=4,
        update_ratios=(0.0, 1.0), max_window=120.0,
        payload_bytes=4096, buffer_pages=128,
    )
    result = run_fig3(config)
    # MVCC storage overhead grows with updates; locking stays bounded.
    assert result.storage_pct["mvcc"][1.0] > result.storage_pct["mvcc"][0.0]
    assert result.storage_pct["locking"][1.0] < 150
    # Throughputs are positive and tabulated.
    assert result.tpm["mvcc"][0.0] > 0
    assert result.tpm["locking"][1.0] > 0
    assert "Fig. 3" in result.to_table()


def tiny_fig6_config() -> Fig6Config:
    return Fig6Config(
        tpcc=TpccConfig(
            warehouses=4, districts_per_warehouse=4,
            customers_per_district=10, items=100,
            orders_per_district=8, order_lines_per_order=3,
        ),
        clients=6, client_interval=0.3,
        ballast_rows_per_warehouse=300, ballast_blob_bytes=16 * 1024,
        node_count=6, warmup=15.0, tail=60.0, bucket=15.0,
        tpcc_segment_max_pages=4,
    )


@pytest.mark.parametrize("scheme", ["physical", "logical", "physiological"])
def test_fig6_tiny_run_all_schemes(scheme):
    result = run_fig6(scheme, tiny_fig6_config())
    assert result.scheme == scheme
    assert result.total_completed > 50
    assert result.migration_seconds > 0
    assert result.records_moved > 0
    # Series cover the whole window with the configured buckets.
    assert len(result.qps) == 5  # (15 + 60) / 15
    assert "Fig. 6" in result.to_table()
    # Power series is sane: between idle minimum and cluster maximum.
    watt_values = [v for _t, v in result.watts if v is not None]
    assert watt_values
    assert all(40 < v < 200 for v in watt_values)


def test_fig6_helper_variant_runs():
    config = dataclasses.replace(tiny_fig6_config(), helper_nodes=(4, 5))
    result = run_fig6("physiological", config)
    assert result.total_completed > 50
    # Helpers raise the power envelope during the migration window.
    during = result.mean_between(result.watts, 0, result.migration_seconds)
    before = result.mean_between(result.watts, -15, 0)
    if during is not None and before is not None:
        assert during > before


def test_scale_in_tiny_run():
    from repro.experiments import ScaleInConfig, run_scale_in
    from repro.workload import TpccConfig

    config = ScaleInConfig(
        tpcc=TpccConfig(
            warehouses=4, districts_per_warehouse=4,
            customers_per_district=10, items=80, orders_per_district=5,
            order_lines_per_order=3,
        ),
        clients=3, client_interval=0.5, node_count=4,
        warmup=15.0, tail=45.0, bucket=15.0, victims=(3, 2),
    )
    result = run_scale_in(config)
    assert result.active_after == 2
    assert result.total_failed == 0
    watts_before = result.mean_between(result.watts, -15, 0)
    watts_after = result.mean_between(result.watts, 15, 45)
    assert watts_after < watts_before - 20
