"""Fig. 9 failover experiment: acceptance semantics on a tiny run.

k=2 + crash: zero lost committed transactions, automatic promotion,
recovery time and throughput dip reported.  k=1: graceful degradation
(partitions unavailable, retries exhaust cleanly, no hang).  Same seed,
same crash schedule, same metrics.
"""

import pytest

from repro.experiments.fig9_failover import Fig9Config, run_fig9_single
from repro.workload import TpccConfig


def tiny_fig9_config(**overrides) -> Fig9Config:
    params = dict(
        tpcc=TpccConfig(
            warehouses=2, districts_per_warehouse=2,
            customers_per_district=10, items=50,
            orders_per_district=4, order_lines_per_order=3,
        ),
        clients=3, client_interval=0.4,
        node_count=4, data_nodes=(1, 2),
        crash_at=12.0, restart_after=16.0, duration=45.0, bucket=5.0,
        seed=0,
    )
    params.update(overrides)
    return Fig9Config(**params)


def test_k2_crash_zero_lost_and_automatic_promotion():
    result = run_fig9_single(2, tiny_fig9_config())
    assert result.committed_orders > 0
    assert result.lost_commits == 0
    assert result.promotions > 0
    assert result.unavailable_partitions == 0
    assert result.replicas_seeded > 0
    assert result.commits_shipped > 0
    # Detection and failover happened and are reported.
    assert result.detection_seconds is not None
    assert 0 < result.detection_seconds < 10
    assert result.failover_seconds is not None
    assert result.failover_seconds >= result.detection_seconds
    assert 0.0 <= result.dip_fraction <= 1.0
    assert result.baseline_qps > 0


def test_k1_degrades_gracefully():
    result = run_fig9_single(1, tiny_fig9_config())
    # No replicas to promote: partitions go unavailable instead.
    assert result.promotions == 0
    assert result.unavailable_partitions > 0
    assert result.replicas_seeded == 0
    # The run terminates (no hang) and acknowledged commits survive
    # on the restarted node's disk-backed partitions.
    assert result.committed_orders > 0
    assert result.lost_commits == 0
    # Clients kept retrying and/or exhausted cleanly during the outage.
    summary = result.retry_summary
    assert summary["retried_completions"] + summary["exhausted_failures"] > 0


def test_same_seed_same_metrics():
    a = run_fig9_single(2, tiny_fig9_config())
    b = run_fig9_single(2, tiny_fig9_config())
    assert a.qps == b.qps
    assert a.committed_orders == b.committed_orders
    assert a.to_row() == b.to_row()
    assert [(e.time, e.kind, e.node_id) for e in a.events] == \
           [(e.time, e.kind, e.node_id) for e in b.events]


def test_different_seed_different_schedule():
    a = run_fig9_single(2, tiny_fig9_config(seed=0))
    b = run_fig9_single(2, tiny_fig9_config(seed=1))
    # Same crash plan, but the workload interleaving differs.
    assert a.committed_orders != b.committed_orders or a.qps != b.qps
