"""The parallel sweep runner: ordering, fallback, and jobs-invariance."""

import dataclasses
import json

from repro.experiments.chaos_moves import run_chaos_suite
from repro.experiments.parallel import default_jobs, run_tasks

from tests.determinism.harness import tiny_chaos_config


def _square(x):
    return x * x


def _explode():
    raise RuntimeError("boom")


def test_run_tasks_preserves_order_inline():
    assert run_tasks([(_square, (i,), {}) for i in range(5)], jobs=1) == [
        0, 1, 4, 9, 16,
    ]


def test_run_tasks_preserves_order_parallel():
    assert run_tasks([(_square, (i,), {}) for i in range(5)], jobs=2) == [
        0, 1, 4, 9, 16,
    ]


def test_single_task_runs_inline_even_with_jobs():
    assert run_tasks([(_square, (3,), {})], jobs=8) == [9]


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_worker_exception_propagates():
    try:
        run_tasks([(_explode, (), {})], jobs=2)
    except RuntimeError as exc:
        assert "boom" in str(exc)
    else:  # pragma: no cover - the call must raise
        raise AssertionError("worker exception was swallowed")


def _suite_fingerprint(result):
    return json.loads(json.dumps([
        dataclasses.asdict(run) for run in result.runs
    ]))


def test_chaos_suite_jobs_invariant():
    """--jobs 1 and --jobs N must produce identical sweep results: each
    seeded schedule is an independent simulation."""
    config = tiny_chaos_config()
    seeds = [0, 1]
    sequential = run_chaos_suite(seeds=seeds, config=config, jobs=1)
    parallel = run_chaos_suite(seeds=seeds, config=config, jobs=2)
    assert _suite_fingerprint(sequential) == _suite_fingerprint(parallel)
    assert sequential.to_table() == parallel.to_table()
