"""Torture harness smoke: the quick configuration survives the full
gray-fault mix with every gate green, audits clean, and replays
bit-identically per seed."""

import dataclasses

import pytest

from repro.experiments.torture import (
    TortureConfig,
    quick_torture_config,
    render_torture,
    run_torture,
)

# Consistent with tier-1's global --timeout=600.
pytestmark = pytest.mark.timeout(600)


class TestTortureSmoke:
    def test_quick_run_holds_every_gate(self):
        result = run_torture(quick_torture_config(), seed=0)
        assert result.ok, render_torture([result])
        assert result.lost_commits == 0
        assert result.unresolved == []
        assert result.torn_txns_committed == 0
        # The schedule actually injected every gray-fault kind ...
        assert result.corruptions_injected >= 1
        assert result.committed_orders > 100
        # ... the detector flagged the limping node before (or absent)
        # an SLO breach ...
        assert result.detection_ok
        assert result.gray_suspects >= 1
        assert result.gray_quarantines >= 1
        assert result.gray_drains >= 1
        # ... and every injected corruption was surfaced through a
        # typed integrity path, never silently read.
        assert result.integrity_errors_surfaced + result.promotions >= 1
        rendered = render_torture([result])
        assert "UNRESOLVED" not in rendered
        assert "scrub summary" in rendered
        assert "gray-failure detector" in rendered

    def test_same_seed_same_fingerprint(self):
        a = run_torture(quick_torture_config(), seed=2)
        b = run_torture(quick_torture_config(), seed=2)
        assert a.ok and b.ok
        assert a.fingerprint == b.fingerprint
        assert a.committed_orders == b.committed_orders
        assert a.scrub_stats == b.scrub_stats
        assert a.gray_stats == b.gray_stats

    def test_distinct_seeds_distinct_schedules(self):
        a = run_torture(quick_torture_config(), seed=0)
        b = run_torture(quick_torture_config(), seed=1)
        assert a.fingerprint != b.fingerprint

    def test_audit_mode_is_clean(self):
        config = dataclasses.replace(quick_torture_config(), audit=True)
        result = run_torture(config, seed=0)
        assert result.ok, result.anomalies
        assert result.audited
        assert result.anomalies == []
        assert result.history_stats.get("ops_recorded", 0) > 0

    def test_detection_gate_fails_when_detector_is_deaf(self):
        # Thresholds nothing can cross: the limping node never gets
        # flagged, so the detection gate must report the miss.
        config = dataclasses.replace(
            quick_torture_config(),
            score_threshold=1e9, clear_threshold=1.0,
        )
        result = run_torture(config, seed=0)
        assert result.limping_flagged_after is None
        assert not result.detection_ok
        assert not result.ok
        assert "missed the limping node" in render_torture([result])
