"""Shared rig for the HA tests: a small all-active cluster with a
key-value table owned by a non-master node."""

import pytest

from repro import Cluster, Column, Environment, Schema


@pytest.fixture()
def rig():
    env = Environment(seed=11)
    cluster = Cluster(env, node_count=4, initially_active=4,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048, lock_timeout=2.0)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[1])
    return env, cluster


def run(env, gen):
    return env.run(until=env.process(gen))


def insert_rows(env, cluster, n, start=0):
    def work():
        txn = cluster.txns.begin()
        for i in range(start, start + n):
            yield from cluster.master.insert("kv", (i, "v%03d" % i), txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
