"""Failover: detection, promotion, unavailability, restoration."""

import pytest

from repro.cluster.master import PartitionUnavailableError
from repro.ha.failover import FailoverCoordinator, FailureDetector
from repro.ha.faults import FaultInjector
from repro.ha.placement import PlacementPolicy
from repro.ha.replication import ReplicationManager
from tests.ha.conftest import insert_rows, run


def protect(env, cluster, k=2):
    manager = ReplicationManager(
        cluster, k=k, policy=PlacementPolicy(cluster, rack_width=2)
    )
    run(env, manager.protect_all())
    return manager


def read_all(env, cluster, keys):
    rows = {}

    def work():
        txn = cluster.txns.begin()
        for key in keys:
            rows[key] = yield from cluster.master.read("kv", key, txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
    return rows


def test_promote_repoints_and_preserves_commits(rig):
    env, cluster = rig
    insert_rows(env, cluster, 30)
    manager = protect(env, cluster, k=2)
    insert_rows(env, cluster, 10, start=100)  # shipped after the base image

    coordinator = FailoverCoordinator(cluster, replication=manager)
    FaultInjector(cluster).apply(
        FaultInjector(cluster).crash_at(0.0, 1).schedule[0]
    )
    run(env, coordinator.node_failed(1))

    assert coordinator.promotions, "every partition should have promoted"
    assert all(p["from_node"] == 1 and p["to_node"] != 1
               for p in coordinator.promotions)
    assert not coordinator.unavailable
    # The gpt now routes every kv partition away from the dead node.
    for _table, _kr, loc in cluster.master.gpt.locations_on(1):
        assert loc.node_id != 1
    # Committed rows (base image and shipped tail) survive the crash.
    rows = read_all(env, cluster, list(range(30)) + list(range(100, 110)))
    assert all(v is not None for v in rows.values())
    # New commits land on the promoted copies.
    insert_rows(env, cluster, 5, start=200)
    rows = read_all(env, cluster, range(200, 205))
    assert all(v is not None for v in rows.values())


def test_promotion_restores_replication_factor(rig):
    env, cluster = rig
    insert_rows(env, cluster, 10)
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    cluster.worker(1).machine.crash()
    run(env, coordinator.node_failed(1))
    for rs in cluster.catalog.replica_sets.values():
        assert rs.primary_node_id != 1
        live = rs.live_replicas(cluster)
        assert len(live) == 1, "factor k=2 means one live replica again"
        assert all(r.holder_node_id != rs.primary_node_id for r in live)


def test_k1_partition_goes_unavailable_then_restores(rig):
    env, cluster = rig
    insert_rows(env, cluster, 10)
    manager = protect(env, cluster, k=1)  # replica sets exist but are empty
    coordinator = FailoverCoordinator(cluster, replication=manager)
    cluster.worker(1).machine.crash()
    run(env, coordinator.node_failed(1))

    assert coordinator.unavailable
    assert not coordinator.promotions

    def reader():
        txn = cluster.txns.begin()
        with pytest.raises(LookupError):
            yield from cluster.master.read("kv", 1, txn)
        cluster.txns.abort(txn)

    run(env, reader())

    def restart():
        yield from cluster.worker(1).machine.power_on()

    run(env, restart())
    run(env, coordinator.node_restored(1))
    assert not coordinator.unavailable
    rows = read_all(env, cluster, range(10))
    assert all(v is not None for v in rows.values())


def test_detector_drives_failover_from_heartbeats(rig):
    env, cluster = rig
    insert_rows(env, cluster, 10)
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    cluster.monitor.interval = 1.0
    detector = FailureDetector(cluster, coordinator, miss_threshold=3)

    def script():
        env.process(cluster.monitor.run())
        env.process(detector.run())
        env.process(FaultInjector(cluster).crash_at(5.0, 1).run())
        yield env.timeout(20.0)

    run(env, script())
    assert detector.detections and detector.detections[0][1] == 1
    detected_at = detector.detections[0][0]
    assert 5.0 < detected_at <= 5.0 + 3 * 1.0 + 2 * 1.0
    assert coordinator.promotions
    assert coordinator.recoveries[0]["node_id"] == 1


def test_node_failed_is_idempotent(rig):
    env, cluster = rig
    insert_rows(env, cluster, 5)
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    cluster.worker(1).machine.crash()
    run(env, coordinator.node_failed(1))
    first = len(coordinator.promotions)
    run(env, coordinator.node_failed(1))
    assert len(coordinator.promotions) == first
    assert len(coordinator.recoveries) == 1


def test_rapid_sever_restore_does_not_oscillate_detector(rig):
    """Heartbeat flapping: a node bouncing between reachable and
    severed must produce one detection and (after it finally holds
    still) one restoration — not a detect/restore cycle per bounce."""
    env, cluster = rig
    insert_rows(env, cluster, 10)
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    cluster.monitor.interval = 1.0
    detector = FailureDetector(cluster, coordinator, miss_threshold=2,
                               restore_threshold=3)
    port = cluster.worker(1).port

    stable_at = {}

    def flapper():
        port.sever()
        yield env.timeout(5.0)        # long enough to be detected dead
        for _ in range(5):            # rapid flapping ...
            port.restore()
            yield env.timeout(1.2)    # ... up for barely one heartbeat
            port.sever()
            yield env.timeout(3.4)    # ... then stale again
        port.restore()                # stable recovery at last
        stable_at["t"] = env.now
        yield env.timeout(8.0)

    def script():
        env.process(cluster.monitor.run())
        env.process(detector.run())
        yield env.process(flapper())

    run(env, script())
    assert len(detector.detections) == 1
    assert len(detector.restorations) == 1
    # The restoration came from the stable window at the end, not from
    # any mid-flap lucky heartbeat.
    assert detector.restorations[0][0] > stable_at["t"]


def test_restore_threshold_validated(rig):
    env, cluster = rig
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    with pytest.raises(ValueError):
        FailureDetector(cluster, coordinator, restore_threshold=0)


def test_promotion_falls_back_past_corrupt_replica(rig):
    """A replica whose log fails its checksum mid-replay must be
    skipped (marked stale) in favour of the next healthy replica."""
    import dataclasses as dc

    env, cluster = rig
    insert_rows(env, cluster, 10)
    manager = protect(env, cluster, k=3)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    partition = next(iter(cluster.workers[1].partitions.values()))
    replica_set = cluster.catalog.replica_set_for(partition.partition_id)
    assert len(replica_set.replicas) == 2
    # Rot the replica that promotion would pick first (lowest holder).
    victim = min(replica_set.replicas, key=lambda r: r.holder_node_id)
    index = next(i for i, r in enumerate(victim.log.records)
                 if r.kind == "insert")
    record = victim.log.records[index]
    victim.log.records[index] = dc.replace(record,
                                           payload=("§rot", record.payload))

    cluster.worker(1).machine.crash()
    run(env, coordinator.node_failed(1))

    assert victim.stale
    assert coordinator.integrity_fallbacks == 1
    assert coordinator.promotions  # the healthy replica still promoted
    rows = read_all(env, cluster, [0, 5, 9])
    assert rows[5] == (5, "v005")


def test_drain_node_demotes_primaries_without_losing_commits(rig):
    env, cluster = rig
    insert_rows(env, cluster, 12)
    manager = protect(env, cluster, k=2)
    coordinator = FailoverCoordinator(cluster, replication=manager)
    assert cluster.workers[1].partitions

    run(env, coordinator.drain_node(1))

    assert coordinator.drains and coordinator.drains[0]["node_id"] == 1
    assert coordinator.drains[0]["demoted"] >= 1
    assert 1 in manager.avoid_nodes
    # Every partition moved off the drained node; data intact.
    locations = cluster.master.gpt.locations_on(1)
    assert all(loc.node_id != 1 for _t, _r, loc in locations) or not locations
    rows = read_all(env, cluster, list(range(12)))
    assert rows[7] == (7, "v007")

    coordinator.undrain_node(1)
    assert 1 not in manager.avoid_nodes
