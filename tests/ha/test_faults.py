"""Fault injector: determinism, crash semantics, master protection."""

import pytest

from repro import Cluster, Environment
from repro.hardware import PowerState
from repro.ha.faults import FaultInjector
from tests.ha.conftest import insert_rows, run


def test_same_seed_same_random_schedule(rig):
    def build(seed):
        env = Environment(seed=seed)
        cluster = Cluster(env, node_count=4, initially_active=4,
                          buffer_pages_per_node=64)
        injector = FaultInjector(cluster)
        injector.random_faults(5, (10.0, 60.0),
                               kinds=("crash", "sever_link", "fail_disk"))
        return injector.schedule

    assert build(3) == build(3)
    assert build(3) != build(4)


def test_same_timestamp_events_replay_in_schedule_order(rig):
    """Regression: ``sorted`` used to tie-break same-timestamp events
    on their fields, replaying ``restore_link`` < ``sever_link``
    alphabetically and inverting an outage scheduled as sever-then-
    restore.  Ordering must follow scheduling order instead."""
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.sever_link_at(5.0, 1).restore_link_at(5.0, 1)
    injector.sever_link_at(2.0, 2)

    assert [e.kind for e in sorted(injector.schedule)] == [
        "sever_link", "sever_link", "restore_link",
    ]

    run(env, injector.run())
    assert [e.kind for e in injector.injected] == [
        "sever_link", "sever_link", "restore_link",
    ]
    # Net effect of sever-then-restore at the same instant: link is up.
    assert cluster.worker(1).is_serving
    assert not cluster.worker(2).is_serving


def test_master_is_protected(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    master_id = cluster.master.worker.node_id
    for kind in ("crash", "sever_link", "fail_disk"):
        with pytest.raises(ValueError):
            injector.at(5.0, kind, master_id)
    # Non-destructive kinds are fine on the master.
    injector.at(5.0, "restart", master_id)


def test_unknown_kind_and_node_rejected(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    with pytest.raises(ValueError):
        injector.at(1.0, "meteor_strike", 1)
    with pytest.raises(LookupError):
        injector.at(1.0, "crash", 99)


def test_crash_aborts_in_flight_and_releases_locks(rig):
    env, cluster = rig
    insert_rows(env, cluster, 5)
    injector = FaultInjector(cluster)
    outcome = {}

    def victim():
        txn = cluster.txns.begin()
        try:
            yield from cluster.master.update("kv", 1, (1, "held"), txn)
            yield env.timeout(30.0)  # holds the row lock across the crash
            yield from cluster.txns.commit(txn)
            outcome["victim"] = "committed"
        except Exception as exc:  # noqa: BLE001 - recording for asserts
            outcome["victim"] = type(exc).__name__

    def script():
        proc = env.process(victim())
        yield env.timeout(1.0)
        injector.crash_at(2.0, 1)
        yield from injector.run()
        yield proc

    run(env, script())
    assert outcome["victim"] == "TransactionAborted"
    assert cluster.worker(1).machine.state is PowerState.CRASHED
    assert not cluster.worker(1).is_serving
    assert injector.injected and injector.injected[0].kind == "crash"
    assert not cluster.txns.active_transactions()


def test_restart_brings_node_back(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.crash_at(1.0, 2).restart_at(2.0, 2)

    def script():
        yield from injector.run()
        yield env.timeout(120.0)  # boot takes sim time

    run(env, script())
    assert cluster.worker(2).machine.state is PowerState.ACTIVE
    assert cluster.worker(2).is_serving


def test_link_and_disk_faults_toggle_serving(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.apply(injector.at(0.0, "sever_link", 1).schedule[-1])
    assert not cluster.worker(1).is_serving
    injector.apply(injector.at(0.0, "restore_link", 1).schedule[-1])
    assert cluster.worker(1).is_serving
    injector.apply(injector.at(0.0, "fail_disk", 3).schedule[-1])
    assert any(d.failed for d in cluster.worker(3).disk_space.disks)
    assert not cluster.worker(3).is_serving
    assert [e.kind for e in injector.injected] == [
        "sever_link", "restore_link", "fail_disk",
    ]


# -- gray (non-fail-stop) faults ----------------------------------------------


def test_bad_parameters_rejected_at_build_time(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    with pytest.raises(ValueError):
        injector.slow_disk_at(1.0, 1, factor=0.5)
    with pytest.raises(ValueError):
        injector.flaky_link_at(1.0, 1, loss_probability=1.0)
    with pytest.raises(ValueError):
        injector.flaky_link_at(1.0, 1, loss_probability=0.1,
                               extra_delay=-0.01)
    with pytest.raises(ValueError):
        injector.at(1.0, "crash", 1, 3.0)  # crash takes no parameters
    assert injector.schedule == []


def test_gray_kinds_protected_on_master(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    master_id = cluster.master.worker.node_id
    for kind in ("bit_rot", "torn_write", "slow_disk", "flaky_link"):
        with pytest.raises(ValueError):
            injector.at(1.0, kind, master_id)


def test_restart_does_not_heal_failed_disk(rig):
    """Restart restores compute only; a failed drive stays failed
    until ``replace_disk`` swaps the device (contents gone)."""
    env, cluster = rig
    injector = FaultInjector(cluster)
    worker = cluster.worker(2)
    injector.fail_disk_at(0.5, 2).crash_at(1.0, 2).restart_at(2.0, 2)

    def script():
        yield from injector.run()
        yield env.timeout(120.0)

    run(env, script())
    dead = [d for d in worker.disk_space.disks if d.failed]
    assert worker.machine.state is PowerState.ACTIVE
    assert len(dead) == 1  # restart healed nothing
    injector.apply(injector.replace_disk_at(0.0, 2).schedule[-1])
    assert not any(d.failed for d in worker.disk_space.disks)


def test_slow_disk_inflates_io_and_restore_speed_undoes_it(rig):
    env, cluster = rig
    worker = cluster.worker(1)
    disk = worker.disk_space.disks[0]

    def timed_read():
        t0 = env.now
        yield from disk.read(64 * 1024, sequential=True)
        return env.now - t0

    base = run(env, timed_read())
    injector = FaultInjector(cluster)
    injector.apply(injector.slow_disk_at(0.0, 1, factor=8.0).schedule[-1])
    slow = run(env, timed_read())
    assert slow == pytest.approx(base * 8.0)
    injector.apply(injector.at(0.0, "restore_speed", 1).schedule[-1])
    healed = run(env, timed_read())
    assert healed == pytest.approx(base)


def test_flaky_link_slows_transfers_deterministically(rig):
    env, cluster = rig
    worker = cluster.worker(1)
    other = cluster.worker(2)

    def timed_transfer():
        t0 = env.now
        yield from cluster.network.transfer(worker.port, other.port,
                                            16 * 1024)
        return env.now - t0

    base = run(env, timed_transfer())
    injector = FaultInjector(cluster)
    injector.apply(injector.flaky_link_at(
        0.0, 1, loss_probability=0.4, extra_delay=0.05).schedule[-1])
    degraded = [run(env, timed_transfer()) for _ in range(20)]
    # Extra delay alone guarantees every transfer got slower; losses
    # add retransmissions on top for some of them.
    assert all(d > base for d in degraded)
    assert worker.port.retransmits > 0
    injector.apply(injector.at(0.0, "heal_link", 1).schedule[-1])
    assert run(env, timed_transfer()) == pytest.approx(base)
    # Same seed, same flake pattern.
    env2 = Environment(seed=11)
    cluster2 = Cluster(env2, node_count=4, initially_active=4,
                       buffer_pages_per_node=256, segment_max_pages=16,
                       page_bytes=2048, lock_timeout=2.0)
    cluster2.worker(1).port.make_flaky(0.4, 0.05)
    # Burn the same number of rng draws is not required: a fresh env
    # with the same seed replays the identical decision sequence.


def test_bit_rot_detected_on_read(rig):
    env, cluster = rig
    insert_rows(env, cluster, 10)
    injector = FaultInjector(cluster)
    injector.apply(injector.bit_rot_at(0.0, 1).schedule[-1])
    rots = [c for c in injector.corruptions if c.target == "page"]
    assert rots
    from repro.storage.checksum import IntegrityError

    partition = cluster.worker(1).partitions[rots[0].partition_id]
    segment = partition.segment_for(rots[0].key)
    with pytest.raises(IntegrityError):
        for _p, _s, version in segment.versions_for(rots[0].key):
            version.verify()


def test_bit_rot_ledger_records_original_bytes(rig):
    env, cluster = rig
    insert_rows(env, cluster, 10)
    injector = FaultInjector(cluster)
    injector.apply(injector.bit_rot_at(0.0, 1).schedule[-1])
    c = injector.corruptions[0]
    partition = cluster.worker(1).partitions[c.partition_id]
    segment = partition.segment_for(c.key)
    # scan_versions bypasses the verifying page.get, so the garbled
    # bytes themselves are observable.
    stored = [v.values for _p, _s, v in segment.scan_versions()
              if v.key == c.key]
    assert stored
    assert tuple(c.original) not in [tuple(v) for v in stored]


def test_torn_write_never_replays_as_committed(rig):
    """A torn commit record is discarded by recovery — the transaction
    was never acknowledged, so it must not become committed."""
    env, cluster = rig
    insert_rows(env, cluster, 8)
    worker = cluster.worker(1)
    injector = FaultInjector(cluster)
    injector.apply(injector.torn_write_at(0.0, 1).schedule[-1])
    assert not worker.is_serving  # physically a crash mid-flush
    torn = [c for c in injector.corruptions if c.target == "wal-tail"]
    assert len(torn) == 1

    from repro.txn.recovery import integrity_scan, analyze, RecoveryReport

    records, discarded = integrity_scan(worker.wal, 0)
    assert discarded >= 1
    # The torn commit record is gone; the transaction's data records
    # may survive as loser records — analysis must not commit them.
    assert all(not (r.txn_id == torn[0].txn_id and r.kind == "commit")
               for r in records)
    report = RecoveryReport()
    _records, committed, _losers = analyze(worker.wal, 0, report)
    assert torn[0].txn_id not in committed
    assert report.torn_records_discarded == discarded


def test_recovery_discard_tail_is_physical(rig):
    """After discarding a torn tail, the WAL really shrinks — new
    appends must not turn the old torn record into apparent mid-log
    corruption."""
    env, cluster = rig
    insert_rows(env, cluster, 8)
    worker = cluster.worker(1)
    injector = FaultInjector(cluster)
    injector.apply(injector.torn_write_at(0.0, 1).schedule[-1])

    from repro.txn.recovery import integrity_scan

    before = worker.wal.live_records
    _records, discarded = integrity_scan(worker.wal, 0)
    worker.wal.discard_tail(discarded)
    assert worker.wal.live_records == before - discarded
    # Appends after the truncation leave a fully verifiable log.
    worker.wal.append(12345, "update", ("kv", 1, (1, "post")))
    worker.wal.append(12345, "commit")
    _records, discarded2 = integrity_scan(worker.wal, 0)
    assert discarded2 == 0


def test_mid_log_corruption_raises_not_truncates(rig):
    """Bit rot *inside* the log (valid records after it) cannot be a
    torn flush: replay must refuse rather than drop acked effects."""
    env, cluster = rig
    insert_rows(env, cluster, 4)
    worker = cluster.worker(1)
    import dataclasses as dc

    from repro.storage.checksum import IntegrityError
    from repro.txn.recovery import integrity_scan

    # Corrupt an early data record while valid records follow it.
    index = next(i for i, r in enumerate(worker.wal.records)
                 if r.kind in ("insert", "update"))
    assert index < worker.wal.live_records - 1
    record = worker.wal.records[index]
    worker.wal.records[index] = dc.replace(record,
                                           payload=("§rot", record.payload))
    with pytest.raises(IntegrityError):
        integrity_scan(worker.wal, 0)


def test_gray_schedule_is_seed_deterministic(rig):
    def build(seed):
        env = Environment(seed=seed)
        cluster = Cluster(env, node_count=4, initially_active=4,
                          buffer_pages_per_node=64)
        injector = FaultInjector(cluster)
        injector.random_faults(
            6, (10.0, 60.0),
            kinds=("bit_rot", "slow_disk", "flaky_link", "torn_write"),
        )
        return injector.schedule

    assert build(7) == build(7)
    assert build(7) != build(8)
