"""Fault injector: determinism, crash semantics, master protection."""

import pytest

from repro import Cluster, Environment
from repro.hardware import PowerState
from repro.ha.faults import FaultInjector
from tests.ha.conftest import insert_rows, run


def test_same_seed_same_random_schedule(rig):
    def build(seed):
        env = Environment(seed=seed)
        cluster = Cluster(env, node_count=4, initially_active=4,
                          buffer_pages_per_node=64)
        injector = FaultInjector(cluster)
        injector.random_faults(5, (10.0, 60.0),
                               kinds=("crash", "sever_link", "fail_disk"))
        return injector.schedule

    assert build(3) == build(3)
    assert build(3) != build(4)


def test_same_timestamp_events_replay_in_schedule_order(rig):
    """Regression: ``sorted`` used to tie-break same-timestamp events
    on their fields, replaying ``restore_link`` < ``sever_link``
    alphabetically and inverting an outage scheduled as sever-then-
    restore.  Ordering must follow scheduling order instead."""
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.sever_link_at(5.0, 1).restore_link_at(5.0, 1)
    injector.sever_link_at(2.0, 2)

    assert [e.kind for e in sorted(injector.schedule)] == [
        "sever_link", "sever_link", "restore_link",
    ]

    run(env, injector.run())
    assert [e.kind for e in injector.injected] == [
        "sever_link", "sever_link", "restore_link",
    ]
    # Net effect of sever-then-restore at the same instant: link is up.
    assert cluster.worker(1).is_serving
    assert not cluster.worker(2).is_serving


def test_master_is_protected(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    master_id = cluster.master.worker.node_id
    for kind in ("crash", "sever_link", "fail_disk"):
        with pytest.raises(ValueError):
            injector.at(5.0, kind, master_id)
    # Non-destructive kinds are fine on the master.
    injector.at(5.0, "restart", master_id)


def test_unknown_kind_and_node_rejected(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    with pytest.raises(ValueError):
        injector.at(1.0, "meteor_strike", 1)
    with pytest.raises(LookupError):
        injector.at(1.0, "crash", 99)


def test_crash_aborts_in_flight_and_releases_locks(rig):
    env, cluster = rig
    insert_rows(env, cluster, 5)
    injector = FaultInjector(cluster)
    outcome = {}

    def victim():
        txn = cluster.txns.begin()
        try:
            yield from cluster.master.update("kv", 1, (1, "held"), txn)
            yield env.timeout(30.0)  # holds the row lock across the crash
            yield from cluster.txns.commit(txn)
            outcome["victim"] = "committed"
        except Exception as exc:  # noqa: BLE001 - recording for asserts
            outcome["victim"] = type(exc).__name__

    def script():
        proc = env.process(victim())
        yield env.timeout(1.0)
        injector.crash_at(2.0, 1)
        yield from injector.run()
        yield proc

    run(env, script())
    assert outcome["victim"] == "TransactionAborted"
    assert cluster.worker(1).machine.state is PowerState.CRASHED
    assert not cluster.worker(1).is_serving
    assert injector.injected and injector.injected[0].kind == "crash"
    assert not cluster.txns.active_transactions()


def test_restart_brings_node_back(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.crash_at(1.0, 2).restart_at(2.0, 2)

    def script():
        yield from injector.run()
        yield env.timeout(120.0)  # boot takes sim time

    run(env, script())
    assert cluster.worker(2).machine.state is PowerState.ACTIVE
    assert cluster.worker(2).is_serving


def test_link_and_disk_faults_toggle_serving(rig):
    env, cluster = rig
    injector = FaultInjector(cluster)
    injector.apply(injector.at(0.0, "sever_link", 1).schedule[-1])
    assert not cluster.worker(1).is_serving
    injector.apply(injector.at(0.0, "restore_link", 1).schedule[-1])
    assert cluster.worker(1).is_serving
    injector.apply(injector.at(0.0, "fail_disk", 3).schedule[-1])
    assert any(d.failed for d in cluster.worker(3).disk_space.disks)
    assert not cluster.worker(3).is_serving
    assert [e.kind for e in injector.injected] == [
        "sever_link", "restore_link", "fail_disk",
    ]
