"""Failover replaying the move journal: half-done segment moves roll
back, interrupted range moves roll back or collapse onto the survivor,
and every resolution fences the stale mover out."""

import pytest

from repro.core import PhysiologicalPartitioning, Rebalancer
from repro.ha.failover import FailoverCoordinator
from repro.moves import ABORTED, FAILED, HANDOVER, MoveFailedError, RetryPolicy

from tests.moves.conftest import build_move_cluster, first_segment


def patient_retry():
    return RetryPolicy(max_attempts=10, base_delay=0.5, multiplier=2.0,
                       max_delay=4.0, jitter=0.0)


class TestSegmentEntryReplay:
    def test_target_death_rolls_the_open_move_back(self):
        env, cluster, partition = build_move_cluster()
        cluster.moves.retry = patient_retry()
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        coordinator = FailoverCoordinator(cluster)
        outcome = {}

        def mover():
            try:
                yield from cluster.moves.transfer_segment(
                    segment, source, target
                )
            except MoveFailedError as exc:
                outcome["error"] = exc

        def failover():
            yield env.timeout(1.2)  # chunk 2 of 4 is on the wire
            target.machine.crash()
            yield from coordinator.node_failed(target.node_id)

        mover_proc = env.process(mover(), name="mover")
        env.run(until=env.process(failover(), name="failover"))
        env.run(until=mover_proc)

        assert isinstance(outcome.get("error"), MoveFailedError)
        (entry,) = cluster.moves.journal.segment_moves.values()
        assert entry.phase == ABORTED
        assert "died" in entry.detail
        # The half-copied target extent is gone; the source still serves.
        assert not target.disk_space.holds(segment.segment_id)
        assert source.disk_space.holds(segment.segment_id)
        assert cluster.directory.location(segment.segment_id)[0] is source
        assert any(e.kind == "move_rolled_back" for e in coordinator.events)


class TestRangeEntryReplay:
    def test_nothing_switched_rolls_the_registration_back(self):
        """Target dies before any segment switched: failover restores
        the exact pre-move world and the degraded rebalancer records
        the failure instead of crashing."""
        env, cluster, partition = build_move_cluster()
        cluster.moves.retry = patient_retry()
        target = cluster.worker(2)
        rebalancer = Rebalancer(cluster, PhysiologicalPartitioning())
        coordinator = FailoverCoordinator(cluster)

        def migration():
            yield from rebalancer.scale_out(["kv"], [1], [2], fraction=0.5)

        def failover():
            yield env.timeout(1.2)
            target.machine.crash()
            yield from coordinator.node_failed(target.node_id)

        migration_proc = env.process(migration(), name="migration")
        env.run(until=env.process(failover(), name="failover"))
        env.run(until=migration_proc)

        journal = cluster.moves.journal
        assert journal.open_range_moves() == []
        assert all(e.phase == ABORTED for e in journal.range_moves.values())
        assert len(rebalancer.failed_moves) == 1
        # Single pointer, back on the source, with everything readable.
        for _key_range, location in cluster.master.gpt.partitions("kv"):
            assert not location.is_moving
            assert location.node_id == 1
        missing = []

        def verify():
            txn = cluster.txns.begin()
            for i in range(120):
                row = yield from cluster.master.read("kv", i, txn)
                if row is None:
                    missing.append(i)
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(verify(), name="verify"))
        assert missing == []


class TestCollapseMatrix:
    """Direct checks of the partially-switched resolutions — the
    failure matrix rows that need data already across the wire."""

    def rig(self):
        env, cluster, partition = build_move_cluster()
        gpt = cluster.master.gpt
        ((_key_range, location),) = gpt.partitions("kv")
        gpt.begin_move("kv", location.partition_id, 2)
        entry = cluster.moves.journal.open_range_move(
            "kv", location.partition_id, location.partition_id, 1, 2,
            HANDOVER,
        )
        entry.segments_switched = 2
        return env, cluster, location, entry

    def test_source_death_collapses_onto_target(self):
        env, cluster, location, entry = self.rig()
        epoch_before = location.epoch
        FailoverCoordinator(cluster)._resolve_range_entry(entry, 1)
        assert entry.phase == FAILED
        assert location.node_id == 2
        assert not location.is_moving
        assert location.epoch == epoch_before + 1

    def test_target_death_keeps_source_ownership(self):
        env, cluster, location, entry = self.rig()
        epoch_before = location.epoch
        FailoverCoordinator(cluster)._resolve_range_entry(entry, 2)
        assert entry.phase == FAILED
        assert location.node_id == 1
        assert not location.is_moving
        assert location.epoch == epoch_before + 1

    def test_both_ends_down_defers_resolution(self):
        env, cluster, location, entry = self.rig()
        cluster.worker(2).machine.crash()  # survivor of a source death
        FailoverCoordinator(cluster)._resolve_range_entry(entry, 1)
        assert entry.is_open  # left for the next failover round
        assert location.is_moving  # dual pointer intact until then
