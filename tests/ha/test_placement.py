"""Placement policy: distinct nodes, rack anti-affinity, load awareness."""

import pytest

from repro import Cluster, Environment
from repro.ha.placement import PlacementPolicy
from repro.ha.replication import ReplicaSet, SegmentReplica


@pytest.fixture()
def cluster():
    env = Environment()
    return Cluster(env, node_count=6, initially_active=6,
                   buffer_pages_per_node=64)


def test_prefers_other_racks(cluster):
    policy = PlacementPolicy(cluster, rack_width=2)
    # Primary on node 1 (rack 0); node 0 shares its rack.
    holders = policy.choose_holders(primary_node_id=1, count=2)
    ids = [w.node_id for w in holders]
    assert 1 not in ids
    assert all(policy.rack_of(n) != policy.rack_of(1) for n in ids)


def test_same_rack_used_only_as_last_resort(cluster):
    policy = PlacementPolicy(cluster, rack_width=2)
    holders = policy.choose_holders(primary_node_id=1, count=5)
    ids = [w.node_id for w in holders]
    assert sorted(ids) == [0, 2, 3, 4, 5]
    # The rack-mate comes last in preference order.
    assert ids[-1] == 0


def test_excludes_and_degrades(cluster):
    policy = PlacementPolicy(cluster, rack_width=2)
    holders = policy.choose_holders(1, 10, exclude={2, 3, 4, 5})
    assert [w.node_id for w in holders] == [0]  # fewer than asked


def test_skips_non_serving_nodes(cluster):
    cluster.workers[2].machine.crash()
    cluster.workers[3].port.sever()
    policy = PlacementPolicy(cluster, rack_width=2)
    ids = [w.node_id for w in policy.choose_holders(1, 10)]
    assert 2 not in ids and 3 not in ids


def test_balances_replica_count(cluster):
    policy = PlacementPolicy(cluster, rack_width=2)
    # Nodes 2 and 3 already hold a replica each; 4 and 5 hold none.
    rs = ReplicaSet(99, "kv", 1)
    rs.replicas = [SegmentReplica(2, None, 0.0), SegmentReplica(3, None, 0.0)]
    cluster.catalog.register_replica_set(rs)
    ids = [w.node_id for w in policy.choose_holders(1, 2)]
    assert ids == [4, 5]


def test_explicit_rack_id_overrides_width(cluster):
    cluster.machines[5].rack_id = 0
    policy = PlacementPolicy(cluster, rack_width=2)
    assert policy.rack_of(5) == 0
    assert policy.rack_of(4) == 2


def test_deterministic(cluster):
    policy = PlacementPolicy(cluster, rack_width=2)
    a = [w.node_id for w in policy.choose_holders(1, 3)]
    b = [w.node_id for w in policy.choose_holders(1, 3)]
    assert a == b
