"""Replication manager: seeding, synchronous shipping, degradation."""

import pytest

from repro.ha.placement import PlacementPolicy
from repro.ha.replication import REPLICA_BASE_TXN_ID, ReplicationManager
from tests.ha.conftest import insert_rows, run


def kv_partition(cluster):
    return cluster.workers[1].partitions_for_table("kv")[0]


def protect(env, cluster, k=2, rack_width=2):
    manager = ReplicationManager(
        cluster, k=k, policy=PlacementPolicy(cluster, rack_width=rack_width)
    )
    run(env, manager.protect_all())
    return manager


def test_seed_builds_base_image(rig):
    env, cluster = rig
    insert_rows(env, cluster, 25)
    manager = protect(env, cluster, k=2)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    assert rs is not None
    assert len(rs.replicas) == 1
    replica = rs.replicas[0]
    assert replica.holder_node_id != rs.primary_node_id
    base = [r for r in replica.log.records
            if r.txn_id == REPLICA_BASE_TXN_ID and r.kind == "insert"]
    assert len(base) == 25
    # Seeding forces the holder's log disk and costs sim time.
    assert replica.log.flushed_lsn > 0
    assert env.now > 0


def test_commit_ships_log_tail_synchronously(rig):
    env, cluster = rig
    insert_rows(env, cluster, 5)
    manager = protect(env, cluster, k=3)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    assert len(rs.replicas) == 2
    insert_rows(env, cluster, 7, start=100)
    for replica in rs.replicas:
        shipped = [r for r in replica.log.records
                   if r.kind == "insert" and r.txn_id > 0]
        assert len(shipped) == 7
        commits = [r for r in replica.log.records
                   if r.kind == "commit" and r.txn_id > 0]
        assert commits, "commit record must be shipped with the tail"
        # Synchronous: shipped records are flushed, not just appended.
        assert replica.log.flushed_lsn == replica.log.records[-1].lsn
    assert manager.commits_shipped >= 1
    assert manager.records_shipped >= 14


def test_abort_discards_buffered_records(rig):
    env, cluster = rig
    insert_rows(env, cluster, 3)
    protect(env, cluster, k=2)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    before = len(rs.replicas[0].log.records)

    def losing():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (500, "loser"), txn)
        cluster.txns.abort(txn)

    run(env, losing())
    assert len(rs.replicas[0].log.records) == before


def test_read_only_commit_ships_nothing(rig):
    env, cluster = rig
    insert_rows(env, cluster, 3)
    manager = protect(env, cluster, k=2)

    def reader():
        txn = cluster.txns.begin()
        row = yield from cluster.master.read("kv", 1, txn)
        assert row is not None
        yield from cluster.txns.commit(txn)

    run(env, reader())
    assert manager.commits_shipped == 0


def test_factor_degrades_without_doubling_up(rig):
    env, cluster = rig
    insert_rows(env, cluster, 3)
    # Only 4 nodes; ask for k=6: at most 3 distinct holders exist.
    protect(env, cluster, k=6)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    holders = [r.holder_node_id for r in rs.replicas]
    assert len(holders) == len(set(holders)) == 3


def test_unreachable_holder_goes_stale_commit_succeeds(rig):
    env, cluster = rig
    insert_rows(env, cluster, 4)
    manager = protect(env, cluster, k=2)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    holder_id = rs.replicas[0].holder_node_id
    cluster.worker(holder_id).machine.crash()
    insert_rows(env, cluster, 4, start=200)  # commit must not fail
    assert rs.replicas[0].stale is True
    assert manager.ship_failures >= 1
    assert rs.best_replica(cluster) is None


def test_reprotect_prunes_stale_and_reseeds(rig):
    env, cluster = rig
    insert_rows(env, cluster, 4)
    manager = protect(env, cluster, k=2)
    partition = kv_partition(cluster)
    rs = cluster.catalog.replica_set_for(partition.partition_id)
    first_holder = rs.replicas[0].holder_node_id
    cluster.worker(first_holder).machine.crash()
    insert_rows(env, cluster, 4, start=300)  # marks the replica stale
    run(env, manager.protect_partition(partition))
    assert len(rs.replicas) == 1
    assert rs.replicas[0].holder_node_id != first_holder
    assert not rs.replicas[0].stale


def test_k1_registers_no_replicas(rig):
    env, cluster = rig
    insert_rows(env, cluster, 3)
    protect(env, cluster, k=1)
    rs = cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)
    assert rs is not None and rs.replicas == []
    assert rs.best_replica(cluster) is None
