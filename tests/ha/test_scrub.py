"""Scrub daemon: detect silent corruption, repair from a replica,
fence what cannot be repaired, rebuild rotten replica logs."""

import pytest

from repro.ha import (
    FailoverCoordinator,
    FaultInjector,
    ReplicationManager,
    ScrubDaemon,
    ScrubPolicy,
)
from repro.cluster.master import PartitionUnavailableError
from repro.storage.checksum import IntegrityError

from tests.ha.conftest import insert_rows, run


def kv_partition(cluster):
    return next(iter(cluster.workers[1].partitions.values()))


def setup_protected(env, cluster, k=2, rows=20):
    insert_rows(env, cluster, rows)
    replication = ReplicationManager(cluster, k=k)
    run(env, replication.protect_all())
    coordinator = FailoverCoordinator(cluster, replication)
    return replication, coordinator


def rot_row(cluster, partition):
    """Garble one committed row in place, fault-injector style;
    returns (version, original_values)."""
    for segment in partition.segments.values():
        for _p, _s, version in segment.scan_versions():
            if version.checksum is None or version.created_ts is None \
                    or version.deleted_ts is not None:
                continue
            original = version.values
            version.values = ("§rot",) + tuple(original[1:])
            version.clean = False
            return version, original
    raise AssertionError("no committed row to rot")


def scrub_once(env, cluster, replication, coordinator, **policy):
    policy.setdefault("interval", 1.0)
    policy.setdefault("pages_per_tick", None)
    daemon = ScrubDaemon(cluster, replication, coordinator,
                         policy=ScrubPolicy(**policy))
    run(env, daemon._tick())
    return daemon


def test_scrub_repairs_page_rot_from_replica(rig):
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster)
    partition = kv_partition(cluster)
    version, original = rot_row(cluster, partition)

    daemon = scrub_once(env, cluster, replication, coordinator)

    assert daemon.corruptions_found == 1
    assert daemon.repaired == 1
    assert daemon.fenced == 0
    assert version.values == tuple(original)
    version.verify(where="test")  # does not raise


def test_scrub_fences_when_no_replica_exists(rig):
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster, k=1)
    partition = kv_partition(cluster)
    version, _original = rot_row(cluster, partition)

    daemon = scrub_once(env, cluster, replication, coordinator)

    assert daemon.corruptions_found == 1
    assert daemon.repaired == 0
    assert daemon.fenced == 1
    location = cluster.master.gpt.locate("kv", version.key)
    assert not location.available
    with pytest.raises(IntegrityError):
        version.verify(where="test")


def test_fenced_partition_fails_fast_for_clients(rig):
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster, k=1)
    partition = kv_partition(cluster)
    version, _ = rot_row(cluster, partition)
    scrub_once(env, cluster, replication, coordinator)

    def read():
        txn = cluster.txns.begin()
        try:
            yield from cluster.master.read("kv", version.key, txn)
        finally:
            if txn.state.value == "active":
                cluster.txns.abort(txn)

    with pytest.raises(PartitionUnavailableError):
        run(env, read())


def test_scrub_marks_rotten_replica_log_stale_and_rebuilds(rig):
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster)
    partition = kv_partition(cluster)
    replica_set = cluster.catalog.replica_set_for(partition.partition_id)
    replica = replica_set.replicas[0]
    # Garble a replica log record, fault-injector style: payload
    # changes, checksum stays.
    import dataclasses

    index = next(
        i for i, r in enumerate(replica.log.records)
        if r.kind in ("insert", "update") and r.checksum is not None
    )
    record = replica.log.records[index]
    replica.log.records[index] = dataclasses.replace(
        record, payload=("§rot", record.payload)
    )

    daemon = scrub_once(env, cluster, replication, coordinator)

    assert daemon.corruptions_found == 1
    assert replica.stale
    assert daemon.replicas_rebuilt == 1
    fresh = [r for r in replica_set.replicas if not r.stale]
    assert fresh and all(r is not replica for r in fresh)
    for r in fresh:
        for rec in r.log.records:
            rec.verify(where="test")


def test_scrub_budget_resumes_across_ticks(rig):
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster, rows=200)
    daemon = ScrubDaemon(cluster, replication, coordinator,
                         policy=ScrubPolicy(interval=1.0, pages_per_tick=2))
    run(env, daemon._tick())
    assert daemon.stats()["pending_units"] > 0
    first = daemon.pages_scanned
    assert first <= 2
    while daemon.stats()["pending_units"]:
        run(env, daemon._tick())
    assert daemon.passes == 1
    assert daemon.pages_scanned > first


def test_scrub_via_injector_ledger(rig):
    """End-to-end: the fault injector rots a row, the scrubber repairs
    it, and the ledger's original bytes match the repaired row."""
    env, cluster = rig
    replication, coordinator = setup_protected(env, cluster)
    injector = FaultInjector(cluster)
    injector.bit_rot_at(env.now + 0.5, 1)
    env.process(injector.run(), name="faults")
    daemon = ScrubDaemon(cluster, replication, coordinator,
                         policy=ScrubPolicy(interval=1.0,
                                            pages_per_tick=None)).start()
    env.run(until=env.now + 5.0)
    daemon.stop()
    page_rots = [c for c in injector.corruptions if c.target == "page"]
    if not page_rots:  # the seeded draw picked the replica log instead
        assert any(c.target == "replica-log" for c in injector.corruptions)
        assert daemon.corruptions_found >= 1
        return
    assert daemon.repaired == len(page_rots)
    for c in page_rots:
        worker = cluster.workers[1]
        partition = worker.partitions[c.partition_id]
        segment = partition.segment_for(c.key)
        values = [v.values for _p, _s, v in segment.versions_for(c.key)
                  if v.deleted_ts is None]
        assert tuple(c.original) in [tuple(v) for v in values]
