"""Unit tests for CPU and disk hardware models."""

import pytest

from repro.hardware import Cpu, Disk, HDD_SPEC, SSD_SPEC, specs
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


def test_cpu_requires_cores():
    env = Environment()
    with pytest.raises(ValueError):
        Cpu(env, cores=0)


def test_cpu_execute_takes_time():
    env = Environment()
    cpu = Cpu(env, cores=2)

    def work():
        yield from cpu.execute(0.5)

    run(env, work())
    assert env.now == pytest.approx(0.5)


def test_cpu_zero_work_is_free():
    env = Environment()
    cpu = Cpu(env, cores=1)

    def work():
        yield from cpu.execute(0.0)
        yield env.timeout(0)

    run(env, work())
    assert env.now == 0


def test_cpu_negative_work_rejected():
    env = Environment()
    cpu = Cpu(env, cores=1)

    def work():
        yield from cpu.execute(-1)

    with pytest.raises(ValueError):
        run(env, work())


def test_cpu_cores_limit_parallelism():
    env = Environment()
    cpu = Cpu(env, cores=2)
    done = []

    def work(tag):
        yield from cpu.execute(1.0)
        done.append((tag, env.now))

    for tag in range(4):
        env.process(work(tag))
    env.run()
    # Two run in parallel, then the next two.
    assert [t for _tag, t in done] == pytest.approx([1, 1, 2, 2])


def test_cpu_utilization_tracked():
    env = Environment()
    cpu = Cpu(env, cores=2)

    def work():
        yield from cpu.execute(3.0)

    env.process(work())
    env.run(until=4.0)
    assert cpu.tracker.integral(4.0) == pytest.approx(3.0)
    assert cpu.tracker.utilization_since(0, 0.0) == pytest.approx(3.0 / 8.0)


def test_hdd_random_page_read_cost():
    env = Environment()
    disk = Disk(env, HDD_SPEC)

    def io():
        yield from disk.read_page()

    run(env, io())
    expected = specs.HDD_ACCESS_SECONDS + specs.PAGE_BYTES / specs.HDD_BANDWIDTH_BYTES_PER_S
    assert env.now == pytest.approx(expected)
    assert disk.reads == 1
    assert disk.bytes_read == specs.PAGE_BYTES


def test_ssd_is_much_faster_than_hdd_for_random_io():
    env = Environment()
    hdd = Disk(env, HDD_SPEC)
    ssd = Disk(env, SSD_SPEC)
    times = {}

    def io(disk, tag):
        start = env.now
        yield from disk.read_page()
        times[tag] = env.now - start

    env.process(io(hdd, "hdd"))
    env.process(io(ssd, "ssd"))
    env.run()
    assert times["hdd"] > 20 * times["ssd"]


def test_sequential_read_skips_access_penalty():
    env = Environment()
    disk = Disk(env, HDD_SPEC)

    def io():
        yield from disk.read(1024 * 1024, sequential=True)

    run(env, io())
    assert env.now == pytest.approx(1024 * 1024 / specs.HDD_BANDWIDTH_BYTES_PER_S)


def test_segment_read_is_near_raw_bandwidth():
    """A whole 32 MiB segment reads at nearly sequential speed — the
    property that makes physical/physiological migration fast."""
    env = Environment()
    disk = Disk(env, HDD_SPEC)

    def io():
        yield from disk.read(specs.SEGMENT_BYTES, sequential=False)

    run(env, io())
    raw = specs.SEGMENT_BYTES / specs.HDD_BANDWIDTH_BYTES_PER_S
    assert env.now == pytest.approx(raw + specs.HDD_ACCESS_SECONDS)
    assert env.now < raw * 1.05


def test_disk_serialises_requests():
    env = Environment()
    disk = Disk(env, SSD_SPEC)
    finishes = []

    def io(tag):
        yield from disk.read_page()
        finishes.append(env.now)

    env.process(io(0))
    env.process(io(1))
    env.run()
    one = specs.SSD_ACCESS_SECONDS + specs.PAGE_BYTES / specs.SSD_BANDWIDTH_BYTES_PER_S
    assert finishes == pytest.approx([one, 2 * one])


def test_disk_write_counters():
    env = Environment()
    disk = Disk(env, SSD_SPEC)

    def io():
        yield from disk.write_page()
        yield from disk.write(100, sequential=True)

    run(env, io())
    assert disk.writes == 2
    assert disk.bytes_written == specs.PAGE_BYTES + 100
    assert disk.io_count == 2


def test_disk_negative_io_rejected():
    env = Environment()
    disk = Disk(env, SSD_SPEC)

    def io():
        yield from disk.read(-5)

    with pytest.raises(ValueError):
        run(env, io())
