"""Unit tests for the network model."""

import pytest

from repro.hardware import Network, NetworkPort, specs
from repro.sim import Environment


def make_ports(env, n):
    return [NetworkPort(env, name=f"n{i}.port") for i in range(n)]


def test_transfer_time_is_latency_plus_wire_time():
    env = Environment()
    net = Network(env)
    a, b = make_ports(env, 2)
    nbytes = 10 * 1024 * 1024

    def move():
        yield from net.transfer(a, b, nbytes)

    env.run(until=env.process(move()))
    expected = specs.NET_MESSAGE_LATENCY_SECONDS + nbytes / specs.NET_BANDWIDTH_BYTES_PER_S
    assert env.now == pytest.approx(expected)
    assert a.bytes_sent == nbytes
    assert b.bytes_received == nbytes
    assert net.bytes_total == nbytes


def test_loopback_transfer_is_free():
    env = Environment()
    net = Network(env)
    (a,) = make_ports(env, 1)

    def move():
        yield from net.transfer(a, a, 10**9)
        yield env.timeout(0)

    env.run(until=env.process(move()))
    assert env.now == 0
    assert net.transfer_count == 0


def test_negative_size_rejected():
    env = Environment()
    net = Network(env)
    a, b = make_ports(env, 2)

    def move():
        yield from net.transfer(a, b, -1)

    with pytest.raises(ValueError):
        env.run(until=env.process(move()))


def test_fan_in_bottlenecks_at_receiver():
    """Two senders to one receiver: rx lane serialises -> ~2x time."""
    env = Environment()
    net = Network(env)
    a, b, c = make_ports(env, 3)
    nbytes = 125 * 1024 * 1024  # 1 second of wire time
    finishes = []

    def move(src):
        yield from net.transfer(src, c, nbytes)
        finishes.append(env.now)

    env.process(move(a))
    env.process(move(b))
    env.run()
    assert finishes[0] == pytest.approx(1.0, rel=0.01)
    assert finishes[1] == pytest.approx(2.0, rel=0.01)


def test_disjoint_pairs_transfer_in_parallel():
    env = Environment()
    net = Network(env)
    a, b, c, d = make_ports(env, 4)
    nbytes = 125 * 1024 * 1024
    finishes = []

    def move(src, dst):
        yield from net.transfer(src, dst, nbytes)
        finishes.append(env.now)

    env.process(move(a, b))
    env.process(move(c, d))
    env.run()
    assert finishes == pytest.approx([1.0, 1.0], rel=0.01)


def test_bidirectional_same_pair_is_full_duplex():
    env = Environment()
    net = Network(env)
    a, b = make_ports(env, 2)
    nbytes = 125 * 1024 * 1024
    finishes = []

    def move(src, dst):
        yield from net.transfer(src, dst, nbytes)
        finishes.append(env.now)

    env.process(move(a, b))
    env.process(move(b, a))
    env.run()
    # a->b uses a.tx + b.rx; b->a uses b.tx + a.rx: no shared lane.
    assert finishes == pytest.approx([1.0, 1.0], rel=0.01)


def test_concurrent_same_direction_transfers_do_not_deadlock():
    """Regression guard for the tx/rx ordered-acquisition rule."""
    env = Environment()
    net = Network(env)
    a, b = make_ports(env, 2)
    nbytes = 12_500_000
    done = []

    def move(tag):
        yield from net.transfer(a, b, nbytes)
        done.append(tag)

    for tag in range(10):
        env.process(move(tag))
    env.run(until=1000)
    assert sorted(done) == list(range(10))


def test_many_random_transfers_complete():
    import random

    rng = random.Random(7)
    env = Environment()
    net = Network(env)
    ports = make_ports(env, 6)
    done = []

    def move(tag):
        src, dst = rng.sample(ports, 2)
        yield env.timeout(rng.random())
        yield from net.transfer(src, dst, rng.randrange(1, 10**7))
        done.append(tag)

    for tag in range(50):
        env.process(move(tag))
    env.run(until=10_000)
    assert len(done) == 50


def test_rpc_delay():
    env = Environment()
    net = Network(env)

    def call():
        yield from net.rpc_delay()

    env.run(until=env.process(call()))
    assert env.now == pytest.approx(specs.NET_RPC_LATENCY_SECONDS)
