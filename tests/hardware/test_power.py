"""Power-model tests, pinned to the paper's Sect. 3.1 figures."""

import pytest

from repro.hardware import (
    ClusterEnergyMeter,
    NodeMachine,
    PowerState,
    specs,
)
from repro.hardware.node import PowerTransitionError
from repro.sim import Environment


def make_cluster(env, n=10, active=1):
    meter = ClusterEnergyMeter(env)
    nodes = []
    for i in range(n):
        node = NodeMachine(env, i, start_active=(i < active))
        meter.attach(node)
        nodes.append(node)
    return meter, nodes


def test_minimal_configuration_draws_about_65_watts():
    """Paper: 'In its minimal configuration ... the cluster consumes
    ~65 Watts' (one active node, 9 standby, plus the switch).  Our
    drive-less active node draws idle base only."""
    env = Environment()
    meter = ClusterEnergyMeter(env)
    for i in range(10):
        node = NodeMachine(env, i, disk_specs=(), start_active=(i == 0))
        meter.attach(node)
    watts = meter.current_watts()
    # 20 (switch) + 20 (active idle) + 9 * 2.5 (standby) = 62.5
    assert 60 <= watts <= 68


def test_realistic_minimal_configuration_with_drives():
    """Paper: 'a more realistic minimal configuration requires
    ~70 - 75 Watts' — the active node carries storage drives."""
    env = Environment()
    meter = ClusterEnergyMeter(env)
    # Master carries a full complement of drives (2 HDD + 4 SSD).
    from repro.hardware import HDD_SPEC, SSD_SPEC

    master_disks = (HDD_SPEC, HDD_SPEC, SSD_SPEC, SSD_SPEC, SSD_SPEC, SSD_SPEC)
    meter.attach(NodeMachine(env, 0, disk_specs=master_disks, start_active=True))
    for i in range(1, 10):
        meter.attach(NodeMachine(env, i, start_active=False))
    watts = meter.current_watts()
    assert 63 <= watts <= 75


def test_full_cluster_draws_260_to_280_watts():
    """Paper: 'With all nodes running at full utilization, the cluster
    will consume ~260 to 280 Watts, depending on the number of disk
    drives installed.'"""
    env = Environment()
    meter, nodes = make_cluster(env, n=10, active=10)

    def burn(node):
        # Saturate both cores and all disks for 10 s.
        def core_work():
            yield from node.cpu.execute(10.0)

        def disk_work(disk):
            yield from disk.read(disk.spec.bandwidth_bytes_per_s * 10, sequential=True)

        for _ in range(node.cpu.cores):
            env.process(core_work())
        for disk in node.disks:
            env.process(disk_work(disk))

    for node in nodes:
        burn(node)
    env.run(until=5.0)
    watts = meter.current_watts()
    assert 255 <= watts <= 285


def test_standby_node_draws_standby_watts():
    env = Environment()
    node = NodeMachine(env, 0, start_active=False)
    assert node.state is PowerState.STANDBY
    assert node.current_watts() == pytest.approx(specs.NODE_STANDBY_WATTS)


def test_energy_integral_matches_constant_power():
    env = Environment()
    node = NodeMachine(env, 0, disk_specs=(), start_active=True)
    env.process((env.timeout(100) for _ in (0,)))  # advance the clock
    env.run(until=100)
    assert node.energy_joules(100) == pytest.approx(specs.NODE_IDLE_WATTS * 100)


def test_energy_includes_cpu_dynamic_part():
    env = Environment()
    node = NodeMachine(env, 0, disk_specs=(), start_active=True)

    def work():
        yield from node.cpu.execute(50.0)

    env.process(work())
    env.run(until=100)
    dynamic = 50.0 * node.power_model.dynamic_watts_per_core
    expected = specs.NODE_IDLE_WATTS * 100 + dynamic
    assert node.energy_joules(100) == pytest.approx(expected)


def test_power_on_off_cycle():
    env = Environment()
    node = NodeMachine(env, 0, start_active=False)
    log = []

    def cycle():
        yield from node.power_on()
        log.append((node.state, env.now))
        yield env.timeout(5)
        yield from node.power_off()
        log.append((node.state, env.now))

    env.run(until=env.process(cycle()))
    assert log[0] == (PowerState.ACTIVE, specs.NODE_BOOT_SECONDS)
    assert log[1][0] is PowerState.STANDBY
    assert node.boot_count == 1


def test_invalid_power_transitions_rejected():
    env = Environment()
    active = NodeMachine(env, 0, start_active=True)
    standby = NodeMachine(env, 1, start_active=False)

    def bad_on():
        yield from active.power_on()

    def bad_off():
        yield from standby.power_off()

    env.process(bad_on())
    with pytest.raises(Exception) as excinfo:
        env.run()
    assert isinstance(excinfo.value.__cause__, PowerTransitionError) or isinstance(
        excinfo.value, PowerTransitionError
    )

    env2 = Environment()
    standby2 = NodeMachine(env2, 1, start_active=False)

    def bad_off2():
        yield from standby2.power_off()

    env2.process(bad_off2())
    with pytest.raises(Exception):
        env2.run()


def test_booting_draws_active_power():
    env = Environment()
    node = NodeMachine(env, 0, disk_specs=(), start_active=False)

    def boot():
        yield from node.power_on()

    env.process(boot())
    env.run(until=specs.NODE_BOOT_SECONDS / 2)
    assert node.state is PowerState.BOOTING
    assert node.current_watts() == pytest.approx(specs.NODE_IDLE_WATTS)


def test_meter_sample_reports_average_watts():
    env = Environment()
    meter = ClusterEnergyMeter(env)
    node = NodeMachine(env, 0, disk_specs=(), start_active=True)
    meter.attach(node)

    def clock():
        yield env.timeout(10)

    env.run(until=env.process(clock()))
    now, watts = meter.sample()
    assert now == 10
    assert watts == pytest.approx(specs.SWITCH_WATTS + specs.NODE_IDLE_WATTS)


def test_scale_out_saves_energy_versus_always_on():
    """The thesis of the paper in miniature: a cluster that keeps nodes
    in standby until needed consumes less energy than an always-on one."""
    env = Environment()
    meter_dynamic, nodes_dynamic = make_cluster(env, n=4, active=1)
    meter_static, nodes_static = make_cluster(env, n=4, active=4)

    def clock():
        yield env.timeout(3600)

    env.run(until=env.process(clock()))
    # Subtract the double-counted switch for a fair node-only comparison.
    switch = specs.SWITCH_WATTS * 3600
    dynamic_nodes_energy = meter_dynamic.energy_joules() - switch
    static_nodes_energy = meter_static.energy_joules() - switch
    assert dynamic_nodes_energy < 0.5 * static_nodes_energy
