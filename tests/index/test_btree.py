"""Unit and property tests for the B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BPlusTree


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.get(1) is None
    assert 1 not in tree
    assert list(tree.items()) == []
    with pytest.raises(KeyError):
        tree.min_key()
    with pytest.raises(KeyError):
        tree.max_key()


def test_insert_and_get():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i * 2)
    assert len(tree) == 100
    for i in range(100):
        assert tree.get(i) == i * 2
    assert tree.get(1000) is None


def test_insert_overwrites():
    tree = BPlusTree()
    tree.insert("k", 1)
    tree.insert("k", 2)
    assert len(tree) == 1
    assert tree.get("k") == 2


def test_reverse_insertion_order():
    tree = BPlusTree(order=4)
    for i in reversed(range(200)):
        tree.insert(i, i)
    assert list(tree.keys()) == list(range(200))


def test_delete():
    tree = BPlusTree(order=4)
    for i in range(50):
        tree.insert(i, i)
    assert tree.delete(25)
    assert not tree.delete(25)
    assert len(tree) == 49
    assert tree.get(25) is None
    assert list(tree.keys()) == [i for i in range(50) if i != 25]


def test_range_scan_half_open():
    tree = BPlusTree(order=4)
    for i in range(0, 100, 2):
        tree.insert(i, i)
    assert [k for k, _v in tree.items(lo=10, hi=20)] == [10, 12, 14, 16, 18]


def test_range_scan_inclusive():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    assert [k for k, _v in tree.items(lo=3, hi=6, hi_inclusive=True)] == [3, 4, 5, 6]


def test_range_scan_unbounded_sides():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    assert [k for k, _v in tree.items(hi=3)] == [0, 1, 2]
    assert [k for k, _v in tree.items(lo=7)] == [7, 8, 9]


def test_range_scan_lo_between_keys():
    tree = BPlusTree(order=4)
    for i in (10, 20, 30):
        tree.insert(i, i)
    assert [k for k, _v in tree.items(lo=15)] == [20, 30]


def test_min_max_keys():
    tree = BPlusTree(order=4)
    for i in (5, 1, 9, 3):
        tree.insert(i, i)
    assert tree.min_key() == 1
    assert tree.max_key() == 9


def test_first_at_or_after():
    tree = BPlusTree(order=4)
    for i in (10, 20, 30):
        tree.insert(i, str(i))
    assert tree.first_at_or_after(15) == (20, "20")
    assert tree.first_at_or_after(20) == (20, "20")
    assert tree.first_at_or_after(31) is None


def test_tuple_keys():
    """Composite primary keys (warehouse_id, district_id) must work."""
    tree = BPlusTree(order=4)
    for w in range(3):
        for d in range(3):
            tree.insert((w, d), w * 10 + d)
    assert tree.get((1, 2)) == 12
    scanned = [k for k, _v in tree.items(lo=(1, 0), hi=(2, 0))]
    assert scanned == [(1, 0), (1, 1), (1, 2)]


def test_string_keys():
    tree = BPlusTree(order=4)
    words = ["pear", "apple", "fig", "banana", "cherry"]
    for w in words:
        tree.insert(w, len(w))
    assert list(tree.keys()) == sorted(words)


def test_height_grows_logarithmically():
    tree = BPlusTree(order=8)
    for i in range(1000):
        tree.insert(i, i)
    assert 2 <= tree.height <= 6


def test_bulk_load():
    tree = BPlusTree.bulk_load([(3, "c"), (1, "a"), (2, "b")], order=4)
    assert list(tree.items()) == [(1, "a"), (2, "b"), (3, "c")]


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=-10**6, max_value=10**6)))
def test_property_matches_dict_semantics(keys):
    tree = BPlusTree(order=4)
    model = {}
    for k in keys:
        tree.insert(k, k * 3)
        model[k] = k * 3
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for k in keys:
        assert tree.get(k) == model[k]


@settings(max_examples=50)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1),
    st.lists(st.integers(min_value=0, max_value=500)),
)
def test_property_delete_matches_model(inserts, deletes):
    tree = BPlusTree(order=4)
    model = {}
    for k in inserts:
        tree.insert(k, k)
        model[k] = k
    for k in deletes:
        assert tree.delete(k) == (k in model)
        model.pop(k, None)
    assert list(tree.items()) == sorted(model.items())


@settings(max_examples=30)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, unique=True),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_property_range_scan_matches_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BPlusTree(order=4)
    for k in keys:
        tree.insert(k, k)
    expected = sorted(k for k in keys if lo <= k < hi)
    assert [k for k, _v in tree.items(lo=lo, hi=hi)] == expected
