"""Tests for the master's global partition table (dual pointers)."""

import pytest

from repro.index import GlobalPartitionTable, KeyRange, PartitionLocation


def make_table():
    gpt = GlobalPartitionTable()
    gpt.register("orders", KeyRange(None, 100), PartitionLocation(1, node_id=0))
    gpt.register("orders", KeyRange(100, None), PartitionLocation(2, node_id=1))
    return gpt


def test_locate_by_key():
    gpt = make_table()
    assert gpt.locate("orders", 5).partition_id == 1
    assert gpt.locate("orders", 100).partition_id == 2


def test_locate_unknown_table():
    gpt = make_table()
    with pytest.raises(KeyError):
        gpt.locate("nope", 1)


def test_locate_uncovered_key():
    gpt = GlobalPartitionTable()
    gpt.register("t", KeyRange(0, 10), PartitionLocation(1, node_id=0))
    with pytest.raises(KeyError):
        gpt.locate("t", 10)


def test_overlapping_registration_rejected():
    gpt = make_table()
    with pytest.raises(ValueError):
        gpt.register("orders", KeyRange(50, 150), PartitionLocation(3, node_id=2))


def test_duplicate_partition_id_rejected_within_table():
    gpt = GlobalPartitionTable()
    gpt.register("t", KeyRange(0, 10), PartitionLocation(1, node_id=0))
    with pytest.raises(ValueError):
        gpt.register("t", KeyRange(10, 20), PartitionLocation(1, node_id=0))


def test_locate_range_prunes_partitions():
    gpt = make_table()
    hits = gpt.locate_range("orders", KeyRange(90, 110))
    assert [loc.partition_id for loc in hits] == [1, 2]
    hits = gpt.locate_range("orders", KeyRange(0, 10))
    assert [loc.partition_id for loc in hits] == [1]


def test_dual_pointers_during_move():
    gpt = make_table()
    gpt.begin_move("orders", 1, target_node_id=5)
    location = gpt.locate("orders", 5)
    assert location.is_moving
    assert location.candidate_nodes == [0, 5]
    gpt.finish_move("orders", 1)
    location = gpt.locate("orders", 5)
    assert not location.is_moving
    assert location.candidate_nodes == [5]


def test_abort_move_restores_source():
    gpt = make_table()
    gpt.begin_move("orders", 1, target_node_id=5)
    gpt.abort_move("orders", 1)
    location = gpt.locate("orders", 5)
    assert location.candidate_nodes == [0]


def test_double_move_rejected():
    gpt = make_table()
    gpt.begin_move("orders", 1, target_node_id=5)
    with pytest.raises(RuntimeError):
        gpt.begin_move("orders", 1, target_node_id=6)


def test_finish_without_move_rejected():
    gpt = make_table()
    with pytest.raises(RuntimeError):
        gpt.finish_move("orders", 1)


def test_split_partition():
    gpt = make_table()
    gpt.split("orders", 2, split_key=500, new_partition_id=3, new_node_id=2)
    assert gpt.locate("orders", 200).partition_id == 2
    assert gpt.locate("orders", 500).partition_id == 3
    assert gpt.locate("orders", 500).node_id == 2
    assert gpt.range_of("orders", 2) == KeyRange(100, 500)


def test_nodes_with_data():
    gpt = make_table()
    assert gpt.nodes_with_data() == {0, 1}
    gpt.begin_move("orders", 1, target_node_id=5)
    assert gpt.nodes_with_data("orders") == {0, 1, 5}


def test_unregister():
    gpt = make_table()
    gpt.unregister("orders", 1)
    assert [l.partition_id for _r, l in gpt.partitions("orders")] == [2]
    with pytest.raises(KeyError):
        gpt.unregister("orders", 1)
