"""Routing during repartitioning: locate() must keep serving while
dual pointers exist — the live owner is always among the candidates,
and the candidate set is never empty at any move phase."""

import pytest

from repro.index.global_table import GlobalPartitionTable, PartitionLocation
from repro.index.partition_tree import KeyRange


@pytest.fixture()
def gpt():
    table = GlobalPartitionTable()
    table.register("kv", KeyRange(None, (50,)), PartitionLocation(1, 1))
    table.register("kv", KeyRange((50,), None), PartitionLocation(2, 2))
    return table


def all_keys():
    return [(0,), (25,), (49,), (50,), (75,), (10_000,)]


def assert_fully_routable(gpt, owner_by_key):
    """Every key locates, with a non-empty candidate set containing the
    node expected to serve it."""
    for key in all_keys():
        location = gpt.locate("kv", key)
        assert location.candidate_nodes, f"no candidates for {key!r}"
        assert owner_by_key(key) in location.candidate_nodes


def test_locate_routes_to_live_owner_mid_move(gpt):
    gpt.begin_move("kv", 1, target_node_id=3)
    location = gpt.locate("kv", (25,))
    assert location.is_moving
    # Both ends are advised during the move, source first.
    assert location.candidate_nodes == [1, 3]
    # Keys of the other partition are unaffected.
    assert gpt.locate("kv", (75,)).candidate_nodes == [2]
    assert_fully_routable(gpt, lambda k: 1 if k < (50,) else 2)


def test_candidates_never_empty_through_full_move_lifecycle(gpt):
    """Walk a complete move: at every phase every key is routable."""
    assert_fully_routable(gpt, lambda k: 1 if k < (50,) else 2)
    gpt.begin_move("kv", 1, target_node_id=3)
    assert_fully_routable(gpt, lambda k: 1 if k < (50,) else 2)
    # Mid-move the *target* must also be advised (records already
    # shipped live only there).
    assert 3 in gpt.locate("kv", (25,)).candidate_nodes
    gpt.finish_move("kv", 1)
    location = gpt.locate("kv", (25,))
    assert not location.is_moving
    assert location.candidate_nodes == [3]
    assert_fully_routable(gpt, lambda k: 3 if k < (50,) else 2)


def test_aborted_move_restores_sole_ownership(gpt):
    before = gpt.epoch_of("kv", 1)
    gpt.begin_move("kv", 1, target_node_id=3)
    gpt.abort_move("kv", 1)
    location = gpt.locate("kv", (25,))
    assert not location.is_moving
    assert location.candidate_nodes == [1]
    # The epoch fence advanced: a stale mover cannot switch late.
    assert gpt.epoch_of("kv", 1) == before + 1


def test_split_mid_move_keeps_every_key_routable(gpt):
    """A split carves the upper half onto a new partition while the
    lower half is being moved: no key may become unroutable."""
    gpt.begin_move("kv", 1, target_node_id=3)
    gpt.split("kv", 2, (75,), new_partition_id=4, new_node_id=4)

    def owner(key):
        if key < (50,):
            return 1  # source of the in-flight move
        if key < (75,):
            return 2
        return 4

    assert_fully_routable(gpt, owner)
    # The moving partition still advises both ends after the split.
    assert gpt.locate("kv", (25,)).candidate_nodes == [1, 3]


def test_self_move_is_a_single_candidate(gpt):
    """A move whose target equals the source (degenerate but legal
    during journal replay) must not duplicate the candidate."""
    gpt.begin_move("kv", 1, target_node_id=1)
    location = gpt.locate("kv", (25,))
    assert location.candidate_nodes == [1]
    gpt.finish_move("kv", 1)
    assert gpt.locate("kv", (25,)).candidate_nodes == [1]


def test_locate_range_spans_moving_and_settled_partitions(gpt):
    gpt.begin_move("kv", 1, target_node_id=3)
    locations = gpt.locate_range("kv", KeyRange((0,), (60,)))
    assert {loc.partition_id for loc in locations} == {1, 2}
    for location in locations:
        assert location.candidate_nodes
    # Union of candidates covers source, target, and the other owner.
    nodes = {n for loc in locations for n in loc.candidate_nodes}
    assert nodes == {1, 2, 3}


def test_double_begin_move_is_rejected(gpt):
    gpt.begin_move("kv", 1, target_node_id=3)
    with pytest.raises(RuntimeError):
        gpt.begin_move("kv", 1, target_node_id=4)
