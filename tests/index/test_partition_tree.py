"""Tests for KeyRange and the per-partition top index."""

import pytest

from repro.index import KeyRange, PartitionTree
from repro.index.partition_tree import Forwarding


class TestKeyRange:
    def test_contains_half_open(self):
        r = KeyRange(10, 20)
        assert r.contains(10)
        assert r.contains(19)
        assert not r.contains(20)
        assert not r.contains(9)

    def test_unbounded_sides(self):
        assert KeyRange(None, 10).contains(-(10**9))
        assert not KeyRange(None, 10).contains(10)
        assert KeyRange(10, None).contains(10**9)
        assert KeyRange(None, None).contains(0)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(5, 5)
        with pytest.raises(ValueError):
            KeyRange(6, 5)

    def test_overlaps(self):
        assert KeyRange(0, 10).overlaps(KeyRange(5, 15))
        assert not KeyRange(0, 10).overlaps(KeyRange(10, 20))  # touching
        assert KeyRange(None, None).overlaps(KeyRange(3, 4))
        assert not KeyRange(0, 5).overlaps(KeyRange(7, 9))

    def test_split(self):
        low, high = KeyRange(0, 100).split_at(40)
        assert (low.low, low.high) == (0, 40)
        assert (high.low, high.high) == (40, 100)

    def test_split_outside_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(0, 10).split_at(10)
        with pytest.raises(ValueError):
            KeyRange(0, 10).split_at(0)

    def test_split_unbounded(self):
        low, high = KeyRange(None, None).split_at(7)
        assert low.high == 7 and low.low is None
        assert high.low == 7 and high.high is None

    def test_str(self):
        assert str(KeyRange(1, 2)) == "[1, 2)"
        assert "inf" in str(KeyRange(None, None))


class TestPartitionTree:
    def test_attach_and_find(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(100, KeyRange(0, 50), "seg-a")
        tree.attach(101, KeyRange(50, 100), "seg-b")
        assert tree.find(10) == "seg-a"
        assert tree.find(50) == "seg-b"
        assert tree.find(100) is None
        assert len(tree) == 2

    def test_overlapping_attach_rejected(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(100, KeyRange(0, 50), "seg-a")
        with pytest.raises(ValueError):
            tree.attach(101, KeyRange(40, 60), "seg-b")

    def test_detach(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(100, KeyRange(0, 50), "seg-a")
        tree.detach(100)
        assert tree.find(10) is None
        with pytest.raises(KeyError):
            tree.detach(100)

    def test_find_range_prunes_segments(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(1, KeyRange(0, 10), "a")
        tree.attach(2, KeyRange(10, 20), "b")
        tree.attach(3, KeyRange(20, 30), "c")
        assert tree.find_range(KeyRange(5, 15)) == ["a", "b"]
        assert tree.find_range(KeyRange(25, 99)) == ["c"]

    def test_forwarding_pointer_lifecycle(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(100, KeyRange(0, 50), "seg-a")
        tree.forward(100, target_node_id=7)
        found = tree.find(10)
        assert isinstance(found, Forwarding)
        assert found.target_node_id == 7
        tree.retire_forwarding(100)
        assert tree.find(10) is None

    def test_retire_nonforwarded_rejected(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(100, KeyRange(0, 50), "seg-a")
        with pytest.raises(KeyError):
            tree.retire_forwarding(100)

    def test_covered_range(self):
        tree = PartitionTree(partition_id=1)
        assert tree.covered_range() is None
        tree.attach(1, KeyRange(10, 20), "a")
        tree.attach(2, KeyRange(20, 40), "b")
        hull = tree.covered_range()
        assert (hull.low, hull.high) == (10, 40)

    def test_range_of(self):
        tree = PartitionTree(partition_id=1)
        tree.attach(1, KeyRange(10, 20), "a")
        assert tree.range_of(1) == KeyRange(10, 20)
