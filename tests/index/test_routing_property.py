"""Model-based tests: the global partition table and partition tree
against dict/interval reference models under random operation streams."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    GlobalPartitionTable,
    KeyRange,
    PartitionLocation,
    PartitionTree,
)


@settings(max_examples=40, deadline=None)
@given(
    boundaries=st.lists(
        st.integers(min_value=1, max_value=999),
        min_size=1, max_size=8, unique=True,
    ),
    probes=st.lists(st.integers(min_value=0, max_value=1000), max_size=30),
)
def test_property_gpt_partitions_cover_exactly(boundaries, probes):
    """Ranges built from sorted boundaries tile the key space; every
    probe maps to exactly the partition whose interval contains it."""
    bounds = sorted(boundaries)
    gpt = GlobalPartitionTable()
    edges = [None] + bounds + [None]
    for i in range(len(edges) - 1):
        gpt.register(
            "t", KeyRange(edges[i], edges[i + 1]),
            PartitionLocation(partition_id=i + 1, node_id=i % 3),
        )
    for key in probes:
        location = gpt.locate("t", key)
        index = sum(1 for b in bounds if b <= key)
        assert location.partition_id == index + 1
        hits = gpt.locate_range("t", KeyRange(key, key + 1))
        assert [l.partition_id for l in hits] == [index + 1]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_moves=st.integers(min_value=1, max_value=10),
)
def test_property_gpt_moves_keep_cover_invariant(seed, n_moves):
    """Random splits/moves never leave a key uncovered or doubly owned."""
    rng = random.Random(seed)
    gpt = GlobalPartitionTable()
    gpt.register("t", KeyRange(None, None), PartitionLocation(1, node_id=0))
    next_pid = 2
    for _ in range(n_moves):
        ranges = gpt.partitions("t")
        key_range, location = rng.choice(ranges)
        action = rng.random()
        if action < 0.5 and not location.is_moving:
            low = key_range.low if key_range.low is not None else 0
            high = key_range.high if key_range.high is not None else 1000
            if high - low > 1:
                split = rng.randrange(low + 1, high)
                gpt.split("t", location.partition_id, split, next_pid,
                          rng.randrange(4))
                next_pid += 1
        elif not location.is_moving:
            gpt.begin_move("t", location.partition_id, rng.randrange(4))
        else:
            if rng.random() < 0.5:
                gpt.finish_move("t", location.partition_id)
            else:
                gpt.abort_move("t", location.partition_id)
    # Invariants: total cover, no overlap, candidate sets non-empty.
    for key in range(0, 1000, 37):
        location = gpt.locate("t", key)
        assert location.candidate_nodes
    entries = gpt.partitions("t")
    for i, (r1, _l1) in enumerate(entries):
        for r2, _l2 in entries[i + 1:]:
            assert not r1.overlaps(r2)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_segments=st.integers(min_value=1, max_value=10),
)
def test_property_partition_tree_find_matches_model(seed, n_segments):
    rng = random.Random(seed)
    tree = PartitionTree(partition_id=1)
    bounds = sorted(rng.sample(range(1, 1000), n_segments + 1))
    model = {}
    for i in range(n_segments):
        key_range = KeyRange(bounds[i], bounds[i + 1])
        tree.attach(i + 1, key_range, f"seg-{i + 1}")
        model[(bounds[i], bounds[i + 1])] = f"seg-{i + 1}"
    for key in range(0, 1000, 13):
        expected = None
        for (low, high), seg in model.items():
            if low <= key < high:
                expected = seg
        assert tree.find(key) == expected
    # Detach a random subset; finds reflect it.
    for segment_id in rng.sample(range(1, n_segments + 1),
                                 rng.randint(0, n_segments)):
        tree.detach(segment_id)
        low, high = bounds[segment_id - 1], bounds[segment_id]
        del model[(low, high)]
    for key in range(0, 1000, 13):
        expected = None
        for (low, high), seg in model.items():
            if low <= key < high:
                expected = seg
        assert tree.find(key) == expected
