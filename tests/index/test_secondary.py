"""Secondary-index tests: structure, maintenance, MVCC filtering,
migration rebuild, and the TPC-C payment-by-name path."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.index.secondary import SecondaryIndex


PEOPLE = Schema(
    [Column("id"), Column("name", "str", width=16), Column("city", "str", width=16)],
    key=("id",),
)


class TestSecondaryIndexUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            SecondaryIndex("bad", [], PEOPLE)
        with pytest.raises(KeyError):
            SecondaryIndex("bad", ["nope"], PEOPLE)

    def test_add_and_candidates(self):
        index = SecondaryIndex("by_city", ["city"], PEOPLE)
        index.add((1, "ada", "berlin"))
        index.add((2, "bob", "berlin"))
        index.add((3, "eve", "mainz"))
        assert index.candidates("berlin") == [1, 2]
        assert index.candidates("mainz") == [3]
        assert index.candidates("paris") == []
        assert len(index) == 3

    def test_duplicate_add_is_idempotent(self):
        index = SecondaryIndex("by_city", ["city"], PEOPLE)
        index.add((1, "ada", "berlin"))
        index.add((1, "ada", "berlin"))
        assert len(index) == 1

    def test_remove(self):
        index = SecondaryIndex("by_city", ["city"], PEOPLE)
        index.add((1, "ada", "berlin"))
        assert index.remove((1, "ada", "berlin"))
        assert not index.remove((1, "ada", "berlin"))
        assert index.candidates("berlin") == []

    def test_composite_secondary_key(self):
        index = SecondaryIndex("by_nc", ["name", "city"], PEOPLE)
        index.add((1, "ada", "berlin"))
        assert index.candidates(("ada", "berlin")) == [1]
        assert index.candidates(("ada", "mainz")) == []


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=3, initially_active=2,
                      buffer_pages_per_node=256, segment_max_pages=4,
                      page_bytes=1024, lock_timeout=1.0)
    cluster.master.create_table("people", PEOPLE, owner=cluster.workers[0])
    partition = list(cluster.workers[0].partitions.values())[0]

    def load():
        txn = cluster.txns.begin()
        for i in range(60):
            city = "berlin" if i % 3 == 0 else "mainz"
            yield from cluster.master.insert(
                "people", (i, "p%03d" % i, city), txn
            )
        yield from cluster.txns.commit(txn)

    env.run(until=env.process(load()))
    partition.create_secondary_index("by_city", ["city"])
    return env, cluster, partition


def lookup(env, cluster, partition, value, cc="mvcc"):
    worker = cluster.workers[0]

    def go():
        txn = cluster.txns.begin()
        rows = yield from worker.read_by_secondary(
            partition, "by_city", value, txn, cc=cc
        )
        yield from cluster.txns.commit(txn)
        return rows

    return env.run(until=env.process(go()))


class TestPartitionSecondaryIndexes:
    def test_build_from_existing_data(self, rig):
        env, cluster, partition = rig
        rows = lookup(env, cluster, partition, "berlin")
        assert len(rows) == 20
        assert all(r[2] == "berlin" for r in rows)

    def test_duplicate_index_name_rejected(self, rig):
        env, cluster, partition = rig
        with pytest.raises(ValueError):
            partition.create_secondary_index("by_city", ["city"])

    def test_unknown_index_rejected(self, rig):
        env, cluster, partition = rig
        with pytest.raises(Exception):
            lookup_name = "nope"

            def go():
                txn = cluster.txns.begin()
                yield from cluster.workers[0].read_by_secondary(
                    partition, lookup_name, "berlin", txn
                )

            env.run(until=env.process(go()))

    def test_insert_maintains_index(self, rig):
        env, cluster, partition = rig

        def go():
            txn = cluster.txns.begin()
            yield from cluster.master.insert(
                "people", (100, "newbie", "berlin"), txn
            )
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(go()))
        rows = lookup(env, cluster, partition, "berlin")
        assert len(rows) == 21

    def test_update_filters_stale_entries(self, rig):
        """A row whose indexed column changed is no longer returned for
        the old value (the stale entry is filtered at read time)."""
        env, cluster, partition = rig

        def go():
            txn = cluster.txns.begin()
            yield from cluster.master.update(
                "people", 0, (0, "p000", "hamburg"), txn
            )
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(go()))
        berlin = lookup(env, cluster, partition, "berlin")
        assert all(r[0] != 0 for r in berlin)
        hamburg = lookup(env, cluster, partition, "hamburg")
        assert [r[0] for r in hamburg] == [0]

    def test_deleted_rows_filtered(self, rig):
        env, cluster, partition = rig

        def go():
            txn = cluster.txns.begin()
            yield from cluster.master.delete("people", 3, txn)
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(go()))
        rows = lookup(env, cluster, partition, "berlin")
        assert all(r[0] != 3 for r in rows)

    def test_routed_lookup_via_master(self, rig):
        env, cluster, partition = rig

        def go():
            txn = cluster.txns.begin()
            rows = yield from cluster.master.read_by_secondary(
                "people", 0, "by_city", "mainz", txn
            )
            yield from cluster.txns.commit(txn)
            return rows

        rows = env.run(until=env.process(go()))
        assert len(rows) == 40

    def test_migration_rebuilds_index_on_target(self, rig):
        """Segments arriving physiologically are spliced into the
        receiving partition's secondary indexes."""
        from repro.core import PhysiologicalPartitioning

        env, cluster, partition = rig

        def go():
            yield from cluster.power_on(2)
            scheme = PhysiologicalPartitioning()
            yield from scheme.migrate_fraction(
                cluster, "people", cluster.workers[0],
                [cluster.worker(2)], 0.5,
            )

        env.run(until=env.process(go()))
        target_parts = cluster.worker(2).partitions_for_table("people")
        assert target_parts
        target = target_parts[0]
        target.create_secondary_index("by_city", ["city"])

        def go2():
            txn = cluster.txns.begin()
            rows = yield from cluster.worker(2).read_by_secondary(
                target, "by_city", "berlin", txn
            )
            yield from cluster.txns.commit(txn)
            return rows

        rows = env.run(until=env.process(go2()))
        assert rows  # moved berlin rows found through the new index


class TestPaymentByName:
    def test_payment_by_name_path(self):
        from repro.workload import (
            TpccConfig, TpccContext, load_tpcc, payment,
        )

        env = Environment()
        cluster = Cluster(env, node_count=2, initially_active=2,
                          buffer_pages_per_node=1024,
                          segment_max_pages=16, page_bytes=2048)
        config = TpccConfig(
            warehouses=2, districts_per_warehouse=2,
            customers_per_district=10, items=50, orders_per_district=5,
            index_customer_name=True,
        )
        load_tpcc(cluster, config,
                  owners=[cluster.workers[0], cluster.workers[1]])
        ctx = TpccContext(cluster, config)

        def go():
            done = 0
            for _ in range(20):
                txn = cluster.txns.begin()
                result = yield from payment(ctx, txn)
                yield from cluster.txns.commit(txn)
                assert result["kind"] == "payment"
                done += 1
            return done

        assert env.run(until=env.process(go())) == 20
