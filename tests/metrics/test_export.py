"""Tests for CSV export."""

import csv

import pytest

from repro.metrics.export import rows_to_csv, series_to_csv


def test_series_to_csv_roundtrip(tmp_path):
    path = series_to_csv(
        tmp_path / "out.csv",
        {
            "qps": [(0.0, 10.0), (10.0, 12.0)],
            "ms": [(0.0, None), (10.0, 5.5)],
        },
    )
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["t_seconds", "qps", "ms"]
    assert rows[1] == ["0.0", "10.0", ""]
    assert rows[2] == ["10.0", "12.0", "5.5"]


def test_series_to_csv_validation(tmp_path):
    with pytest.raises(ValueError):
        series_to_csv(tmp_path / "x.csv", {})
    with pytest.raises(ValueError):
        series_to_csv(tmp_path / "x.csv", {
            "a": [(0.0, 1.0)],
            "b": [(5.0, 1.0)],
        })


def test_series_to_csv_creates_directories(tmp_path):
    path = series_to_csv(tmp_path / "deep" / "dir" / "out.csv",
                         {"a": [(0.0, 1.0)]})
    assert path.exists()


def test_rows_to_csv(tmp_path):
    path = rows_to_csv(tmp_path / "rows.csv", ["x", "y"],
                       [[1, 2], [3, 4]])
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]


def test_fig6_result_to_csv(tmp_path):
    """End-to-end: a tiny fig6 run exports its panels."""
    from tests.experiments.test_experiments_smoke import tiny_fig6_config
    from repro.experiments import run_fig6

    result = run_fig6("physiological", tiny_fig6_config())
    path = result.to_csv(tmp_path / "fig6.csv")
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["t_seconds", "qps", "resp_ms", "watts", "J/query"]
    assert len(rows) == 1 + len(result.qps)
