"""The streaming log-bucketed latency histogram: percentile accuracy
within bucket resolution, weighted recording, merge, and bucket sums."""

import random

import pytest

from repro.metrics import LatencyHistogram
from repro.metrics.series import TimeSeries, percentile


class TestLatencyHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(low=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(low=10.0, high=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1.0)
        with pytest.raises(ValueError):
            h.record(1.0, count=0)
        with pytest.raises(ValueError):
            h.percentile(50)  # empty

    def test_percentiles_within_bucket_resolution(self):
        """Against the exact (sorted) percentile, the histogram's error
        must stay below one bucket's relative width."""
        rng = random.Random(7)
        h = LatencyHistogram(growth=2 ** 0.125)
        values = [rng.lognormvariate(3.0, 1.5) for _ in range(20_000)]
        for v in values:
            h.record(v)
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = percentile(values, q)
            approx = h.percentile(q)
            assert approx == pytest.approx(exact, rel=2 ** 0.125 - 1 + 0.02)

    def test_weighted_record_equals_repeated_record(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for v in (1.0, 5.0, 25.0):
            a.record(v, count=100)
            for _ in range(100):
                b.record(v)
        assert a.count == b.count == 300
        for q in (10.0, 50.0, 99.0):
            assert a.percentile(q) == b.percentile(q)
        assert a.mean() == pytest.approx(b.mean())

    def test_percentile_clamped_to_observed_extremes(self):
        h = LatencyHistogram()
        h.record(3.0)
        assert h.percentile(0) == 3.0
        assert h.percentile(100) == 3.0
        assert h.p50 == 3.0

    def test_under_and_overflow_buckets(self):
        h = LatencyHistogram(low=1.0, high=100.0)
        h.record(0.001)       # below low
        h.record(1e9)         # above high
        assert h.count == 2
        assert h.percentile(1) <= 1.0
        assert h.p999 == pytest.approx(1e9)

    def test_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for i in range(100):
            a.record(float(i + 1))
            b.record(float(i + 101))
        a.merge(b)
        assert a.count == 200
        assert a.max_value == 200.0
        assert a.p50 == pytest.approx(100.0, rel=0.1)
        with pytest.raises(ValueError):
            a.merge(LatencyHistogram(growth=2.0))

    def test_summary_empty_and_filled(self):
        h = LatencyHistogram(name="t")
        assert h.summary()["count"] == 0
        h.record(10.0, count=5)
        s = h.summary()
        assert s["count"] == 5
        assert s["mean"] == pytest.approx(10.0)
        assert s["max"] == 10.0


class TestBucketSum:
    def test_sums_weighted_points_per_bucket(self):
        ts = TimeSeries("completions")
        ts.record(0.5, 10.0)
        ts.record(0.9, 5.0)
        ts.record(1.5, 100.0)
        out = ts.bucket_sum(0.0, 3.0, 1.0)
        assert out == [(0.0, 15.0), (1.0, 100.0), (2.0, 0.0)]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            TimeSeries().bucket_sum(0.0, 1.0, 0.0)
