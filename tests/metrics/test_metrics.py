"""Tests for cost breakdowns, time series, and report rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    CostBreakdown,
    TimeSeries,
    percentile,
    render_series_table,
    render_table,
)
from repro.metrics.breakdown import COMPONENTS


class TestCostBreakdown:
    def test_add_and_total(self):
        b = CostBreakdown()
        b.add("disk_io", 0.5)
        b.add("locking", 0.25)
        assert b.disk_io == 0.5
        assert b.total == pytest.approx(0.75)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            CostBreakdown().add("gpu", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostBreakdown().add("disk_io", -1.0)

    def test_merge(self):
        a = CostBreakdown(disk_io=1.0)
        b = CostBreakdown(disk_io=0.5, logging=2.0)
        a.merge(b)
        assert a.disk_io == 1.5
        assert a.logging == 2.0

    def test_scaled(self):
        b = CostBreakdown(disk_io=2.0, latching=4.0)
        half = b.scaled(0.5)
        assert half.disk_io == 1.0
        assert half.latching == 2.0
        assert b.disk_io == 2.0  # original untouched

    def test_as_dict_covers_all_components(self):
        assert set(CostBreakdown().as_dict()) == set(COMPONENTS)


class TestPercentile:
    def test_basic(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 3
        assert percentile(values, 100) == 5

    def test_interpolation(self):
        assert percentile([1, 2], 50) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_property_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)


class TestTimeSeries:
    def test_record_and_values(self):
        s = TimeSeries("x")
        s.record(1.0, 10.0)
        s.record(2.0, 20.0)
        assert len(s) == 2
        assert s.values() == [10.0, 20.0]
        assert s.mean() == 15.0

    def test_between(self):
        s = TimeSeries()
        for t in range(10):
            s.record(float(t), float(t))
        assert s.between(2, 5) == [2.0, 3.0, 4.0]

    def test_bucket_mean_with_gaps(self):
        s = TimeSeries()
        s.record(0.5, 10.0)
        s.record(2.5, 30.0)
        buckets = s.bucket_mean(0, 3, 1.0)
        assert buckets == [(0, 10.0), (1.0, None), (2.0, 30.0)]

    def test_bucket_rate(self):
        s = TimeSeries()
        for t in (0.1, 0.2, 0.3, 1.5):
            s.record(t, 1.0)
        rates = s.bucket_rate(0, 2, 1.0)
        assert rates == [(0, 3.0), (1.0, 1.0)]

    def test_bucket_validation(self):
        s = TimeSeries()
        with pytest.raises(ValueError):
            s.bucket_mean(0, 1, 0)
        with pytest.raises(ValueError):
            s.bucket_rate(0, 1, -1)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("empty").mean()


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert "10" in lines[4] and "-" in lines[4]

    def test_render_table_arity_check(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series_table(self):
        series = {
            "x": [(0.0, 1.0), (10.0, 2.0)],
            "y": [(0.0, 3.0), (10.0, None)],
        }
        out = render_series_table(series)
        assert "x" in out and "y" in out
        assert "10.0" in out

    def test_render_series_table_mismatch(self):
        with pytest.raises(ValueError):
            render_series_table({
                "x": [(0.0, 1.0)],
                "y": [(5.0, 1.0)],
            })

    def test_render_series_table_empty(self):
        with pytest.raises(ValueError):
            render_series_table({})
