"""Shared helpers: a small cluster with one loaded table whose
segments the mover tests push between nodes."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.hardware.disk import DiskSpec
from repro.workload.tpcc_gen import fast_insert

SCHEMA = Schema([Column("id"), Column("v", "str", width=40)], key=("id",))

#: Fast log disk (takes the WAL role) plus a deliberately slow data
#: disk, so a chunk copy takes visible sim time and faults injected
#: mid-move deterministically land inside the copy loop.
SLOW_DATA_SPECS = (
    DiskSpec(kind="hdd", access_seconds=0.0001,
             bandwidth_bytes_per_s=100 * 1024 * 1024,
             capacity_bytes=4 * 1024 * 1024,
             idle_watts=0.3, active_watts=0.4),
    DiskSpec(kind="ssd", access_seconds=0.0001,
             bandwidth_bytes_per_s=4 * 1024,
             capacity_bytes=4 * 1024 * 1024,
             idle_watts=0.3, active_watts=0.4),
)


def build_move_cluster(rows=120, chunk_bytes=2048, seed=0):
    """Three active nodes; "kv" lives on node 1 in several small
    segments; node 2 is the move target.  Chunks are small so one
    segment spans multiple chunks (resume is observable)."""
    env = Environment(seed=seed)
    cluster = Cluster(
        env, node_count=3, initially_active=3,
        disk_specs=SLOW_DATA_SPECS,
        buffer_pages_per_node=512, segment_max_pages=8, page_bytes=1024,
    )
    cluster.moves.chunk_bytes = chunk_bytes
    owner = cluster.worker(1)
    cluster.master.create_table("kv", SCHEMA, owner=owner)
    partition = next(iter(owner.partitions.values()))
    for i in range(rows):
        fast_insert(owner, partition, (i, "seed-%04d" % i))
    return env, cluster, partition


@pytest.fixture()
def move_cluster():
    return build_move_cluster()


def first_segment(partition):
    return next(iter(partition.segments.values()))


def drive(env, gen, name="test-driver"):
    """Run a mover generator to completion; returns its value or
    re-raises its exception."""
    box = {}

    def driver():
        try:
            box["value"] = yield from gen
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            box["error"] = exc

    env.run(until=env.process(driver(), name=name))
    if "error" in box:
        raise box["error"]
    return box["value"]
