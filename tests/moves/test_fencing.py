"""Epoch fencing: a mover that stalls through an ownership change must
find its switch refused, never clobbering the new owner."""

import pytest

from repro.moves import ABORTED, DONE, EpochFencedError, RetryPolicy

from tests.moves.conftest import drive, first_segment


def partition_location(cluster, table="kv"):
    (_key_range, location), = cluster.master.gpt.partitions(table)
    return location


class TestEpochFencing:
    def test_epoch_is_captured_at_prepare(self, move_cluster):
        env, cluster, partition = move_cluster
        location = partition_location(cluster)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target, fence=("kv", location.partition_id)
        ))
        assert entry.phase == DONE
        assert entry.epoch == location.epoch

    def test_promotion_during_stall_fences_the_switch(self, move_cluster):
        """The classic stale-mover race: the move stalls on a severed
        link, failover promotes a new owner (epoch bump), the link
        heals and the mover finishes its copy — the switch must be
        refused and the move rolled back."""
        env, cluster, partition = move_cluster
        cluster.moves.retry = RetryPolicy(max_attempts=10, base_delay=0.25,
                                          multiplier=2.0, max_delay=4.0,
                                          jitter=0.0)
        location = partition_location(cluster)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)

        def promote_while_stalled():
            yield env.timeout(1.2)  # chunk 2 in flight
            target.port.sever()
            # While the mover backs off, "failover" repoints ownership.
            cluster.master.gpt.reassign("kv", location.partition_id, 2)
            yield env.timeout(1.2)
            target.port.restore()

        env.process(promote_while_stalled(), name="promoter")
        with pytest.raises(EpochFencedError):
            drive(env, cluster.moves.transfer_segment(
                segment, source, target,
                fence=("kv", location.partition_id),
            ))
        entries = list(cluster.moves.journal.segment_moves.values())
        assert entries[-1].phase == ABORTED
        # The extent stayed with the source; nothing was clobbered.
        assert cluster.directory.location(segment.segment_id)[0] is source
        assert source.disk_space.holds(segment.segment_id)
        assert not target.disk_space.holds(segment.segment_id)

    def test_unfenced_move_ignores_epoch_changes(self, move_cluster):
        """Physical-scheme moves carry no fence: an epoch bump on the
        partition must not abort them."""
        env, cluster, partition = move_cluster
        location = partition_location(cluster)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)

        def bump():
            yield env.timeout(1.2)
            cluster.master.gpt.reassign("kv", location.partition_id, 1)

        env.process(bump(), name="bumper")
        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target
        ))
        assert entry.phase == DONE
        assert cluster.directory.location(segment.segment_id)[0] is target

    def test_vanished_partition_counts_as_fenced(self, move_cluster):
        """If the governed GPT entry disappears entirely (unsplit /
        drop), the fence reads as broken and the switch is refused."""
        env, cluster, partition = move_cluster
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        # A fence naming a partition that never existed: epoch_of
        # raises KeyError, which the mover treats as fenced-by-definition
        # only when the captured epoch differs from None.
        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target, fence=("kv", 999)
        ))
        # Captured epoch is None and stays None: consistent, so DONE.
        assert entry.phase == DONE
        assert entry.epoch is None
