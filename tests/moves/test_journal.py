"""Unit tests for the durable move journal: phase transitions, chunk
checkpoints, resume lookup, accounting, and WAL mirroring."""

import pytest

from repro.moves import (
    ABORTED,
    COPY,
    DONE,
    FAILED,
    MoveJournal,
    PREPARE,
    SPLIT,
    SWITCH,
)


class FakeWal:
    def __init__(self):
        self.records = []

    def append(self, txn_id, kind, payload):
        self.records.append((txn_id, kind, payload))


def open_move(journal, segment_id=7, source=1, target=2,
              bytes_total=8192, chunk_bytes=2048, **kw):
    return journal.open_segment_move(
        segment_id, source, target, bytes_total, chunk_bytes, **kw
    )


class TestSegmentEntries:
    def test_open_entry_starts_in_prepare_with_fresh_id(self):
        journal = MoveJournal()
        a = open_move(journal)
        b = open_move(journal, segment_id=8)
        assert a.phase == PREPARE and a.is_open
        assert b.move_id > a.move_id
        assert journal.open_segment_moves() == [a, b]

    def test_chunk_acks_advance_the_resume_point(self):
        journal = MoveJournal()
        entry = open_move(journal, bytes_total=5000, chunk_bytes=2048)
        journal.advance(entry, COPY)
        journal.ack_chunk(entry, 2048)
        journal.ack_chunk(entry, 2048)
        assert entry.chunks_acked == 2
        assert entry.bytes_shipped == 4096
        assert entry.bytes_acked == 4096
        # The final short chunk may overshoot; the ack view is clamped.
        journal.ack_chunk(entry, 904)
        assert entry.bytes_acked == 5000

    def test_advance_on_closed_entry_is_refused(self):
        journal = MoveJournal()
        entry = open_move(journal)
        journal.advance(entry, ABORTED, "test")
        assert not entry.is_open
        with pytest.raises(RuntimeError):
            journal.advance(entry, COPY)

    def test_resumable_lookup_matches_open_same_endpoint_entries_only(self):
        journal = MoveJournal()
        closed = open_move(journal, segment_id=7)
        journal.advance(closed, ABORTED, "rolled back")
        other = open_move(journal, segment_id=7, source=1, target=3)
        assert other is not None
        live = open_move(journal, segment_id=7, source=1, target=2)
        found = journal.resumable_segment_move(7, 1, 2)
        assert found is live
        assert journal.resumable_segment_move(7, 2, 1) is None
        assert journal.resumable_segment_move(9, 1, 2) is None

    def test_open_moves_involving_filters_by_endpoint(self):
        journal = MoveJournal()
        a = open_move(journal, segment_id=1, source=1, target=2)
        b = open_move(journal, segment_id=2, source=3, target=4)
        segs, _ranges = journal.open_moves_involving(2)
        assert segs == [a]
        segs, _ranges = journal.open_moves_involving(3)
        assert segs == [b]
        segs, _ranges = journal.open_moves_involving(9)
        assert segs == []


class TestRangeEntries:
    def test_range_entry_lifecycle(self):
        journal = MoveJournal()
        entry = journal.open_range_move("kv", 1, 2, 1, 2, SPLIT)
        assert entry.is_open and entry.segments_switched == 0
        journal.note_segment_switched(entry)
        journal.note_segment_switched(entry)
        assert entry.segments_switched == 2
        journal.advance_range(entry, DONE)
        assert not entry.is_open
        with pytest.raises(RuntimeError):
            journal.advance_range(entry, COPY)
        assert journal.open_range_moves() == []

    def test_segment_moves_of_range(self):
        journal = MoveJournal()
        range_entry = journal.open_range_move("kv", 1, 2, 1, 2, SPLIT)
        inside = open_move(journal, range_move_id=range_entry.move_id)
        open_move(journal, segment_id=8)  # unrelated
        assert journal.segment_moves_of_range(range_entry.move_id) == [inside]


class TestAccounting:
    def test_summary_buckets_first_try_retried_and_terminal_phases(self):
        journal = MoveJournal()
        clean = open_move(journal, segment_id=1)
        journal.advance(clean, DONE)
        retried = open_move(journal, segment_id=2)
        retried.retries = 3
        retried.resumes = 1
        retried.bytes_reshipped = 2048
        journal.advance(retried, DONE)
        aborted = open_move(journal, segment_id=3)
        journal.advance(aborted, ABORTED, "rolled back")
        failed = open_move(journal, segment_id=4)
        journal.advance(failed, FAILED, "failover")
        still_open = open_move(journal, segment_id=5)
        journal.advance(still_open, COPY)

        summary = journal.summary()
        assert summary["moves_total"] == 5
        assert summary["first_try_moves"] == 1
        assert summary["retried_moves"] == 1
        assert summary["resumed_moves"] == 1
        assert summary["rolled_back_moves"] == 1
        assert summary["failed_moves"] == 1
        assert summary["retries_total"] == 3
        assert summary["bytes_reshipped"] == 2048
        assert summary["open_moves"] == 1

    def test_every_transition_is_mirrored_into_the_wal(self):
        wal = FakeWal()
        journal = MoveJournal(wal=wal)
        entry = open_move(journal)
        journal.advance(entry, COPY)
        journal.ack_chunk(entry, 2048)
        journal.advance(entry, SWITCH)
        journal.advance(entry, DONE)
        range_entry = journal.open_range_move("kv", 1, 2, 1, 2, SPLIT)
        journal.note_segment_switched(range_entry)
        journal.advance_range(range_entry, DONE)
        kinds = [kind for _txn, kind, _payload in wal.records]
        assert kinds == [
            "move", "move", "move-chunk", "move", "move",
            "range-move", "range-move-progress", "range-move",
        ]
