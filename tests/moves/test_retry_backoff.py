"""RetryPolicy math, and the mover's behaviour under transient wire
faults: retry-until-healed, retries-exhausted rollback, and the
per-move deadline."""

import random

import pytest

from repro.moves import (
    ABORTED,
    DONE,
    MoveFailedError,
    MoveTimeoutError,
    RetryPolicy,
)

from tests.moves.conftest import drive, first_segment


class TestRetryPolicy:
    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             max_delay=8.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay(a, rng) for a in (1, 2, 3, 4, 5, 6)] == \
            [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             max_delay=30.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 6):
            raw = min(1.0 * 2.0 ** (attempt - 1), 30.0)
            for _ in range(20):
                delay = policy.delay(attempt, rng)
                assert raw * 0.5 <= delay <= raw

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, random.Random(0))


class TestMoverRetries:
    def test_transient_outage_is_retried_to_completion(self, move_cluster):
        env, cluster, partition = move_cluster
        cluster.moves.retry = RetryPolicy(max_attempts=8, base_delay=0.25,
                                          multiplier=2.0, max_delay=4.0,
                                          jitter=0.0)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)

        def outage():
            yield env.timeout(0.001)
            target.port.sever()
            yield env.timeout(1.5)
            target.port.restore()

        env.process(outage(), name="outage")
        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target
        ))
        assert entry.phase == DONE
        assert entry.retries > 0
        assert cluster.directory.location(segment.segment_id)[0] is target
        assert not source.disk_space.holds(segment.segment_id)
        assert target.disk_space.holds(segment.segment_id)

    def test_exhausted_retries_roll_the_move_back(self, move_cluster):
        env, cluster, partition = move_cluster
        cluster.moves.retry = RetryPolicy(max_attempts=3, base_delay=0.1,
                                          multiplier=2.0, max_delay=1.0,
                                          jitter=0.0)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        target.port.sever()  # and never restored

        with pytest.raises(MoveFailedError):
            drive(env, cluster.moves.transfer_segment(
                segment, source, target
            ))
        entries = list(cluster.moves.journal.segment_moves.values())
        assert entries and entries[-1].phase == ABORTED
        # Rollback left the world exactly as before the move.
        assert cluster.directory.location(segment.segment_id)[0] is source
        assert source.disk_space.holds(segment.segment_id)
        assert not target.disk_space.holds(segment.segment_id)

    def test_deadline_bounds_the_total_stall(self, move_cluster):
        env, cluster, partition = move_cluster
        cluster.moves.retry = RetryPolicy(max_attempts=50, base_delay=0.5,
                                          multiplier=2.0, max_delay=8.0,
                                          jitter=0.0)
        cluster.moves.move_timeout = 2.0
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)
        target.port.sever()

        with pytest.raises(MoveTimeoutError):
            drive(env, cluster.moves.transfer_segment(
                segment, source, target
            ))
        assert env.now <= 3.0  # gave up near the deadline, not after 50 tries
        assert source.disk_space.holds(segment.segment_id)
        assert not target.disk_space.holds(segment.segment_id)

    def test_resumed_chunks_are_not_reshipped(self, move_cluster):
        """A fault after some acked chunks resumes from the checkpoint:
        total shipped bytes stay below two full payloads."""
        env, cluster, partition = move_cluster
        cluster.moves.retry = RetryPolicy(max_attempts=8, base_delay=0.25,
                                          multiplier=2.0, max_delay=4.0,
                                          jitter=0.0)
        source, target = cluster.worker(1), cluster.worker(2)
        segment = first_segment(partition)

        def outage():
            # Strike mid-copy: at ~0.5 s/chunk side, chunk 1 is acked
            # around t=1.0 and chunk 2 is on the wire at t=1.2.
            yield env.timeout(1.2)
            target.port.sever()
            yield env.timeout(1.2)
            target.port.restore()

        env.process(outage(), name="outage")
        entry = drive(env, cluster.moves.transfer_segment(
            segment, source, target
        ))
        assert entry.phase == DONE
        assert entry.resumes > 0
        assert entry.chunks_acked * entry.chunk_bytes >= entry.bytes_total
        assert entry.bytes_shipped < 2 * entry.bytes_total
