"""Shared rig for the read-tier tests: a small all-active cluster with
a replicated key-value table and a :class:`~repro.reads.ReadTier`
installed on the master."""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.ha.placement import PlacementPolicy
from repro.ha.replication import ReplicationManager
from repro.reads import ReadTier


@pytest.fixture()
def rig():
    env = Environment(seed=17)
    cluster = Cluster(env, node_count=4, initially_active=4,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048, lock_timeout=2.0)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[1])
    return env, cluster


def run(env, gen):
    return env.run(until=env.process(gen))


def insert_rows(env, cluster, n, start=0):
    def work():
        txn = cluster.txns.begin()
        for i in range(start, start + n):
            yield from cluster.master.insert("kv", (i, "v%03d" % i), txn)
        yield from cluster.txns.commit(txn)

    run(env, work())


def protect(env, cluster, k=2, rack_width=2):
    manager = ReplicationManager(
        cluster, k=k, policy=PlacementPolicy(cluster, rack_width=rack_width)
    )
    run(env, manager.protect_all())
    return manager


def install_tier(cluster, replication, **kwargs):
    kwargs.setdefault("lag_budget", 64)
    kwargs.setdefault("view_refresh_interval", 0.05)
    return ReadTier(cluster, replication, **kwargs)


def read_only_txn(cluster):
    return cluster.txns.begin(read_only=True)
