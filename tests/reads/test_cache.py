"""Distributed cache: coherence against a model store under random
interleavings of fills, commits, probes, and shard crashes — plus the
conservation ledgers the experiment gates on."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, Environment
from repro.reads.cache import HIT, DistributedCache


def make_cache(seed=0, quota=4096, node_count=3):
    env = Environment(seed=seed)
    cluster = Cluster(env, node_count=node_count,
                      initially_active=node_count,
                      buffer_pages_per_node=64)
    cache = DistributedCache(cluster,
                             [w.node_id for w in cluster.workers],
                             seed=seed, per_tenant_quota=quota)
    return cluster, cache


class FakeRecord:
    def __init__(self, kind, payload):
        self.kind = kind
        self.payload = payload


@st.composite
def cache_script(draw):
    """A randomized schedule over a tiny keyspace.  Commit timestamps
    are globally increasing; every reader's snapshot is the then-newest
    commit timestamp (a safe-horizon snapshot, which is the only kind
    the router ever offers the cache)."""
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        kind = draw(st.sampled_from(
            ["commit", "fill", "probe", "probe", "crash"]))
        key = draw(st.integers(min_value=0, max_value=4))
        steps.append((kind, key, draw(st.integers(0, 2))))
    return steps


@settings(max_examples=80, deadline=None)
@given(script=cache_script())
def test_property_hits_always_serve_the_newest_visible_value(script):
    cluster, cache = make_cache(seed=3)
    store: dict[int, tuple] = {}   # key -> newest committed value
    ts = 10
    txn_id = 100
    #: Readers that fetched from the primary but have not filled yet:
    #: (key, value-at-their-snapshot, snapshot).
    unfilled: list[tuple[int, tuple, int]] = []
    rng = random.Random(7)

    for kind, key, arg in script:
        if kind == "commit":
            ts += 1
            txn_id += 1
            value = (key, f"v{ts}")
            store[key] = value
            cache.apply_commit(txn_id, ts, [
                FakeRecord("insert", ("t", key, value))])
        elif kind == "fill":
            # A primary read at snapshot ts sees store[key]; it fills
            # some steps later (commits may have landed in between —
            # the race guard must reject those).
            if key in store:
                unfilled.append((key, store[key], ts))
            if unfilled and rng.random() < 0.7:
                fkey, fvalue, fts = unfilled.pop(
                    rng.randrange(len(unfilled)))
                cache.fill("t", fkey, fvalue, fts, tenant=f"t{arg}")
        elif kind == "probe":
            status, values = cache.probe("t", key, ts)
            if status == HIT:
                assert values == store.get(key), (
                    f"hit served {values!r}, newest committed is "
                    f"{store.get(key)!r}"
                )
        else:  # crash one shard node and let the next probe wipe it
            worker = cluster.workers[arg % len(cluster.workers)]
            if worker.machine.is_active:
                worker.machine.crash()
                cache.probe("t", key, ts)
                env = cluster.env
                env.run(until=env.process(worker.machine.power_on()))

    assert cache.ledger_conserved()


def test_write_through_overwrites_and_delete_invalidates():
    _cluster, cache = make_cache()
    cache.fill("t", 1, (1, "old"), 10)
    assert cache.probe("t", 1, 10) == (HIT, (1, "old"))
    cache.apply_commit(50, 12, [FakeRecord("update", ("t", 1, (1, "new")))])
    # Older snapshot: the overwritten version is gone, not stale.
    status, _ = cache.probe("t", 1, 10)
    assert status != HIT
    assert cache.probe("t", 1, 12) == (HIT, (1, "new"))
    cache.apply_commit(51, 13, [FakeRecord("delete", ("t", 1))])
    status, _ = cache.probe("t", 1, 13)
    assert status != HIT
    assert cache.invalidations == 1
    assert cache.write_throughs == 1


def test_fill_race_rejected_after_newer_commit():
    _cluster, cache = make_cache()
    # A reader at snapshot 10 read (1, "stale"); txn 50 then committed
    # (1, "fresh") at 12 and wrote through (write-around here: key is
    # uncached, but the last-write stamp still bumps).
    cache.apply_commit(50, 12, [FakeRecord("update", ("t", 1, (1, "fresh")))])
    assert cache.fill("t", 1, (1, "stale"), 10) is False
    assert cache.fills_rejected_race == 1
    status, _ = cache.probe("t", 1, 12)
    assert status != HIT  # nothing was planted


def test_per_tenant_quota_enforced():
    _cluster, cache = make_cache(quota=2)
    assert cache.fill("t", 1, (1, "a"), 10, tenant="web")
    assert cache.fill("t", 2, (2, "b"), 10, tenant="web")
    assert cache.fill("t", 3, (3, "c"), 10, tenant="web") is False
    assert cache.fills_rejected_quota == 1
    # Other tenants have their own budget.
    assert cache.fill("t", 3, (3, "c"), 10, tenant="batch")
    assert cache.ledger_conserved()


def test_crash_wipes_shard_on_next_probe():
    cluster, cache = make_cache(node_count=1)
    cache.fill("t", 1, (1, "a"), 10)
    assert cache.entry_count == 1
    cluster.workers[0].machine.crash()
    status, _ = cache.probe("t", 1, 10)
    assert status != HIT
    env = cluster.env
    env.run(until=env.process(cluster.workers[0].machine.power_on()))
    cache.probe("t", 1, 10)
    assert cache.entry_count == 0
    assert cache.shard_wipes == 1
    assert cache.ledger_conserved()
