"""Planted violations for the read-tier checkers: each anomaly class —
stale replica read beyond the lag budget, missed cache invalidation,
lagging view, diverged view — is flagged as exactly its own kind, and
clean read-tier histories pass every checker."""

from repro.audit.checkers import (
    History,
    check_aborted_reads,
    check_cache_coherence,
    check_intermediate_reads,
    check_lost_updates,
    check_snapshot_reads,
    check_staleness_bounds,
    check_view_checkpoints,
    check_write_cycles,
)
from repro.audit.history import Op, ViewCheckpoint

LAG_BUDGET = 64.0


def all_anomalies(history: History, checkpoints=(), lag_bound=None):
    out = []
    for checker in (check_aborted_reads, check_intermediate_reads,
                    check_lost_updates, check_write_cycles,
                    check_snapshot_reads):
        out += checker(history)
    out += check_staleness_bounds(history, LAG_BUDGET)
    out += check_cache_coherence(history)
    out += check_view_checkpoints(checkpoints, lag_bound)
    return out


def assert_only(kind, history, checkpoints=(), lag_bound=None):
    kinds = {a.kind for a in all_anomalies(history, checkpoints, lag_bound)}
    assert kind in kinds, f"planted {kind} not detected"
    assert kinds == {kind}, f"unexpected extra anomalies: {kinds}"


def committed_base():
    """Txn 1 commits (5, 'v1') at ts 11; txn 2 updates it to 'v2' at 13
    with its full commit (including invalidation) done by t=1.0."""
    return [
        Op.begin(1, 10, at=0.1),
        Op.write(1, "insert", "t", 5, (5, "v1"), at=0.2),
        Op.commit(1, 11, at=0.3),
        Op.begin(2, 12, at=0.5),
        Op.write(2, "update", "t", 5, (5, "v2"),
                 prev_writer=1, prev_ts=11, at=0.6),
        Op.commit(2, 13, at=1.0),
    ]


# -- clean histories ---------------------------------------------------------

def test_clean_read_tier_history_passes_every_checker():
    ops = committed_base() + [
        # Replica read inside the lag budget, correct version.
        Op.begin(3, 14, at=2.0),
        Op.read(3, "t", 5, (5, "v2"), writer_txn=2, version_ts=13,
                at=2.1, origin="replica", lag=12.0),
        Op.commit(3, 15, at=2.2),
        # Cache hit (write-through entry): stamped by its real writer.
        Op.begin(4, 16, at=3.0),
        Op.read(4, "t", 5, (5, "v2"), writer_txn=2, version_ts=13,
                at=3.1, origin="cache"),
        Op.commit(4, 17, at=3.2),
        # Cache hit (fill entry): no writer, judged by value.
        Op.begin(5, 18, at=4.0),
        Op.read(5, "t", 5, (5, "v2"), writer_txn=None, version_ts=14,
                at=4.1, origin="cache"),
        Op.commit(5, 19, at=4.2),
    ]
    checkpoints = [ViewCheckpoint(t=5.0, label="final", view="v",
                                  lag=0.05, incremental_fingerprint="abc",
                                  recomputed_fingerprint="abc")]
    assert all_anomalies(History(ops), checkpoints, lag_bound=5.0) == []


# -- planted staleness-bound -------------------------------------------------

def test_planted_stale_replica_read_flagged_as_staleness_bound():
    ops = committed_base() + [
        Op.begin(3, 14, at=2.0),
        # Correct version — but the serving replica lagged the primary
        # by more than the budget the router promised to enforce.
        Op.read(3, "t", 5, (5, "v2"), writer_txn=2, version_ts=13,
                at=2.1, origin="replica", lag=LAG_BUDGET + 1),
        Op.commit(3, 15, at=2.2),
    ]
    assert_only("staleness-bound", History(ops))


def test_replica_read_with_wrong_version_is_an_si_anomaly_too():
    """A replica read carries real version stamps, so a wrong version
    is caught by the ordinary snapshot checker even when the lag was
    inside the budget."""
    ops = committed_base() + [
        Op.begin(3, 14, at=2.0),
        Op.read(3, "t", 5, (5, "v1"), writer_txn=1, version_ts=11,
                at=2.1, origin="replica", lag=1.0),
        Op.commit(3, 15, at=2.2),
    ]
    assert_only("si-stale-read", History(ops))


# -- planted missed invalidation ---------------------------------------------

def test_planted_missed_invalidation_flagged_as_cache_stale_hit():
    # Fill entry (no writer identity): txn 2's update fully completed
    # at t=1.0, yet a snapshot begun afterwards still saw "v1".
    ops = committed_base() + [
        Op.begin(3, 14, at=2.0),
        Op.read(3, "t", 5, (5, "v1"), writer_txn=None, version_ts=10,
                at=2.1, origin="cache"),
        Op.commit(3, 15, at=2.2),
    ]
    assert_only("cache-stale-hit", History(ops))


def test_planted_future_stamped_cache_entry_flagged():
    # Write-through entry stamped newer than the reader's snapshot:
    # the probe guard (version_ts <= begin) was violated.
    ops = committed_base() + [
        Op.begin(3, 12, at=2.0),
        Op.read(3, "t", 5, (5, "v2"), writer_txn=2, version_ts=13,
                at=2.1, origin="cache"),
        Op.commit(3, 15, at=2.2),
    ]
    assert_only("cache-stale-hit", History(ops))


def test_cache_hit_within_invalidation_window_is_not_flagged():
    """The commit's invalidation pass had not completed before the read
    began — the fill checker must not call that a missed invalidation."""
    ops = [
        Op.begin(1, 10, at=0.1),
        Op.write(1, "insert", "t", 5, (5, "v1"), at=0.2),
        Op.commit(1, 11, at=0.3),
        Op.begin(2, 12, at=0.5),
        Op.write(2, "update", "t", 5, (5, "v2"),
                 prev_writer=1, prev_ts=11, at=0.6),
        Op.commit(2, 13, at=5.0),  # commit (and invalidation) done at 5.0
        Op.begin(3, 14, at=4.0),
        Op.read(3, "t", 5, (5, "v1"), writer_txn=None, version_ts=10,
                at=4.5, origin="cache"),  # read started before 5.0
        Op.commit(3, 15, at=6.0),
    ]
    anomalies = check_cache_coherence(History(ops))
    assert anomalies == []


# -- planted view violations -------------------------------------------------

def test_planted_lagging_view_flagged_as_view_lag():
    checkpoints = [ViewCheckpoint(t=9.0, label="meter", view="v",
                                  lag=7.5, incremental_fingerprint="abc",
                                  recomputed_fingerprint="abc")]
    assert_only("view-lag", History([]), checkpoints, lag_bound=5.0)


def test_planted_diverged_view_flagged_as_view_divergence():
    checkpoints = [ViewCheckpoint(t=9.0, label="final", view="v",
                                  lag=0.01,
                                  incremental_fingerprint="abc123abc123",
                                  recomputed_fingerprint="def456def456")]
    assert_only("view-divergence", History([]), checkpoints, lag_bound=5.0)


def test_view_checker_ignores_lag_without_a_bound():
    checkpoints = [ViewCheckpoint(t=9.0, label="meter", view="v",
                                  lag=1e9, incremental_fingerprint="a",
                                  recomputed_fingerprint="a")]
    assert check_view_checkpoints(checkpoints, None) == []
