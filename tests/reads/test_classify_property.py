"""Property tests for the replica point-read rule: ``classify_point``
never serves anything a reference MVCC oracle would not, and only
bounces when the single-version row state genuinely cannot answer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reads import BOUNCE, MISS, SERVE, classify_point

#: A version chain is a list of (commit_ts, value-or-None) in commit
#: order; ``None`` is a committed delete.
REPLICA_BASE_TXN_ID = -2


@st.composite
def chain_and_snapshot(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    ts_list = sorted(draw(st.lists(
        st.integers(min_value=2, max_value=100),
        min_size=n, max_size=n, unique=True)))
    chain = [
        (ts, None if draw(st.booleans()) and draw(st.booleans())
         else ("k", f"v@{ts}"))
        for ts in ts_list
    ]
    base_ts = draw(st.integers(min_value=1, max_value=101))
    begin_ts = draw(st.integers(min_value=0, max_value=110))
    return chain, base_ts, begin_ts


def oracle(chain, begin_ts):
    """The version a primary MVCC read at ``begin_ts`` returns: the
    newest committed value at or before the snapshot (None if the key
    does not exist there)."""
    visible = None
    for ts, value in chain:
        if ts <= begin_ts:
            visible = value
    return visible


def replica_entry(chain, base_ts):
    """The replica's single-version row state after a base image at
    ``base_ts`` plus synchronous shipping of everything after it —
    exactly how ``_seed_replica`` and ``_apply_to_rows`` build it.

    The base image collapses history at or before ``base_ts`` into one
    pseudo-committed row stamped ``base_ts`` (only if the key is live
    there); later commits fold in individually with their true stamps.
    """
    shipped = [(ts, value) for ts, value in chain if ts > base_ts]
    if shipped:
        ts, value = shipped[-1]
        return (value, 1000 + ts, ts)
    base_value = oracle(chain, base_ts)
    if base_value is None:
        return None
    return (base_value, REPLICA_BASE_TXN_ID, base_ts)


@settings(max_examples=300, deadline=None)
@given(data=chain_and_snapshot())
def test_property_classify_point_agrees_with_mvcc_oracle(data):
    chain, base_ts, begin_ts = data
    entry = replica_entry(chain, base_ts)
    verdict, values = classify_point(entry, begin_ts, base_ts)

    if begin_ts < base_ts:
        # The snapshot predates the base image: the row state cannot
        # know what the key looked like then.  Always a bounce.
        assert verdict == BOUNCE
        return

    expected = oracle(chain, begin_ts)
    if verdict == SERVE:
        assert values == expected, (
            f"served {values!r}, oracle says {expected!r}"
        )
        assert expected is not None
    elif verdict == MISS:
        # A definitive "does not exist" must match the oracle.
        assert expected is None
    else:
        # Bouncing is always safe, but it must only happen when the
        # single-version map genuinely lost the needed version: the
        # entry is newer than the snapshot.
        assert entry is not None and entry[2] > begin_ts


@settings(max_examples=100, deadline=None)
@given(data=chain_and_snapshot())
def test_property_classify_never_fabricates(data):
    """SERVE values always come verbatim from the entry (the function
    never invents data), and a tombstone entry is never served."""
    chain, base_ts, begin_ts = data
    entry = replica_entry(chain, base_ts)
    verdict, values = classify_point(entry, begin_ts, base_ts)
    if verdict == SERVE:
        assert entry is not None and values == entry[0]
        assert values is not None
    else:
        assert values is None


def test_classify_point_edges():
    # Snapshot before the base image: bounce regardless of the entry.
    assert classify_point(None, 4, 5) == (BOUNCE, None)
    assert classify_point((("x",), 7, 5), 4, 5) == (BOUNCE, None)
    # Absent key at or after base: a definitive miss.
    assert classify_point(None, 5, 5) == (MISS, None)
    # Entry newer than the snapshot: the needed version is gone.
    assert classify_point((("x",), 7, 9), 8, 5) == (BOUNCE, None)
    # Tombstone at or before the snapshot: key deleted, miss.
    assert classify_point((None, 7, 8), 8, 5) == (MISS, None)
    # The visible version itself: serve.
    assert classify_point((("x",), 7, 8), 8, 5) == (SERVE, ("x",))
