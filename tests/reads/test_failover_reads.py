"""Read tier under failover: a replica read interrupted by the
holder's crash retries cleanly at the primary; commits racing a
crash-abort never survive on a replica; commits landing inside a
seeding window are never lost."""

import pytest

from repro.audit import HistoryRecorder, audit_history
from repro.cluster.master import NodeDownError
from repro.txn.manager import TransactionAborted, TxnState
from tests.reads.conftest import (
    insert_rows,
    install_tier,
    protect,
    read_only_txn,
    run,
)


def kv_partition(cluster):
    return cluster.workers[1].partitions_for_table("kv")[0]


def replica_set(cluster):
    return cluster.catalog.replica_set_for(kv_partition(cluster).partition_id)


def step_until(env, condition, dt=0.0005, limit=60.0):
    deadline = env.now + limit
    while not condition():
        if env.now >= deadline:
            raise AssertionError("condition never became true")
        env.run(until=env.now + dt)


# -- crash mid-replica-read (promotion regression) ---------------------------

class TestCrashMidReplicaRead:
    def test_holder_crash_mid_read_raises_retryable_and_primary_serves(
            self, rig):
        env, cluster = rig
        insert_rows(env, cluster, 12)
        replication = protect(env, cluster, k=2)
        tier = install_tier(cluster, replication)
        recorder = HistoryRecorder().attach(cluster)
        recorder.staleness_budget = float(tier.lag_budget)

        rs = replica_set(cluster)
        holder_id = rs.replicas[0].holder_node_id

        # Calibrate: one undisturbed replica read to learn its duration.
        outcome = {}

        def read_once(key, out):
            txn = read_only_txn(cluster)
            out["row"] = yield from cluster.master.read("kv", key, txn)
            yield from cluster.txns.commit(txn)

        t0 = env.now
        run(env, read_once(3, outcome))
        duration = env.now - t0
        assert outcome["row"] is not None
        assert tier.served_replica == 1, "calibration read must hit a replica"

        # The real thing: an identical read with the holder crashing
        # mid-flight.  The tier must surface the retryable routing
        # error, and the client's retry must succeed on the primary.
        result = {}

        def reader():
            txn = read_only_txn(cluster)
            try:
                row = yield from cluster.master.read("kv", 4, txn)
                result["first_try"] = row
            except NodeDownError:
                result["interrupted"] = True
                cluster.txns.abort(txn)
                retry = read_only_txn(cluster)
                row = yield from cluster.master.read("kv", 4, retry)
                yield from cluster.txns.commit(retry)
            else:
                yield from cluster.txns.commit(txn)
            result["row"] = row

        def crasher():
            yield env.timeout(duration / 2)
            cluster.worker(holder_id).machine.crash()

        env.process(crasher(), name="crasher")
        run(env, reader())

        assert result.get("interrupted"), (
            "the holder crash landed inside the read window, so the "
            "tier must raise the retryable NodeDownError"
        )
        assert result["row"] == (4, "v004")
        assert tier.failover_retries >= 1
        assert tier.bounces["failover"] >= 1
        # The interrupted read recorded nothing torn; the whole history
        # (including the retry served by the primary) audits clean.
        report = audit_history(recorder)
        assert report.ok, report.descriptions()

    def test_dead_holder_is_never_picked_again(self, rig):
        env, cluster = rig
        insert_rows(env, cluster, 6)
        replication = protect(env, cluster, k=2)
        tier = install_tier(cluster, replication)
        rs = replica_set(cluster)
        cluster.worker(rs.replicas[0].holder_node_id).machine.crash()

        out = {}

        def reader():
            txn = read_only_txn(cluster)
            out["row"] = yield from cluster.master.read("kv", 2, txn)
            yield from cluster.txns.commit(txn)

        run(env, reader())
        # No live candidate: the tier bounced to the primary instead of
        # touching the dead holder.
        assert out["row"] == (2, "v002")
        assert tier.served_replica == 0
        assert tier.bounces["no-candidate"] >= 1


# -- crash-abort vs in-flight commit shipping --------------------------------

class TestCommitRetraction:
    def test_crash_abort_retracts_shipped_commit_marker(self, rig):
        """A transaction crash-aborted while its commit marker was
        already flushed on a replica must not survive promotion: the
        abort is propagated to every replica that holds the marker,
        superseding it in the replay scan (the local-WAL rule, applied
        to the shipped copies)."""
        env, cluster = rig
        insert_rows(env, cluster, 8)
        replication = protect(env, cluster, k=3)
        rs = replica_set(cluster)
        assert len(rs.replicas) == 2

        state = {}

        def writer():
            txn = cluster.txns.begin()
            state["txn"] = txn
            try:
                yield from cluster.master.insert("kv", (900, "doomed"), txn)
                yield from cluster.txns.commit(txn)
                state["committed"] = True
            except TransactionAborted:
                state["aborted"] = True

        env.process(writer(), name="writer")

        def marker_on_some_replica():
            txn = state.get("txn")
            if txn is None or txn.state is not TxnState.ACTIVE:
                return False
            return any(
                any(r.kind == "commit" and r.txn_id == txn.txn_id
                    for r in replica.log.records)
                for replica in rs.replicas
            )

        step_until(env, marker_on_some_replica)
        txn = state["txn"]
        # The crash-abort (what FaultInjector._abort_in_flight does when
        # the primary dies mid-commit).
        cluster.workers[1].machine.crash()
        cluster.txns.abort(txn)
        env.run(until=env.now + 5.0)

        assert state.get("aborted"), "the commit must observe the abort"
        assert replication.commits_retracted >= 1
        for replica in rs.replicas:
            marker = [r for r in replica.log.records
                      if r.kind == "commit" and r.txn_id == txn.txn_id]
            if marker:
                # Every shipped marker is superseded by an abort record.
                assert any(r.kind == "abort" and r.txn_id == txn.txn_id
                           for r in replica.log.records)
            # The replay scan never resurrects the loser ...
            assert all(r.txn_id != txn.txn_id
                       for r in replica.log.committed_ops_since())
            # ... and the row state was unwound.
            assert 900 not in replica.rows

    def test_clean_commit_leaves_no_inflight_tracking(self, rig):
        env, cluster = rig
        insert_rows(env, cluster, 4)
        replication = protect(env, cluster, k=3)
        insert_rows(env, cluster, 2, start=500)
        assert replication._shipped_inflight == {}
        assert replication.commits_retracted == 0
        for replica in replica_set(cluster).replicas:
            assert 500 in replica.rows


# -- commits landing inside a seeding window ---------------------------------

class TestSeedingWindow:
    def test_commit_during_seed_ships_to_the_seeding_replica(self, rig):
        """A replica is registered before its base image crosses the
        wire, so commits landing mid-seed ship to it like any other;
        they must be present once seeding completes (the lost-forever
        window this ordering closes)."""
        env, cluster = rig
        # Enough rows that the base-image transfer is a wide-open
        # window (a few ms of sim time) the stepper can land inside.
        insert_rows(env, cluster, 1500)

        from repro.ha.placement import PlacementPolicy
        from repro.ha.replication import ReplicationManager
        replication = ReplicationManager(
            cluster, k=2, policy=PlacementPolicy(cluster, rack_width=2))
        env.process(replication.protect_all(), name="protect")

        def seeding_replica():
            rs = replica_set(cluster)
            return rs is not None and any(r.seeding for r in rs.replicas)

        step_until(env, seeding_replica, dt=0.0002)
        rs = replica_set(cluster)
        replica = next(r for r in rs.replicas if r.seeding)
        # Mid-seed: not promotable, not readable.
        assert rs.live_replicas(cluster) == []

        def committer():
            txn = cluster.txns.begin()
            yield from cluster.master.insert("kv", (9700, "midseed"), txn)
            yield from cluster.txns.commit(txn)

        run(env, committer())
        env.run(until=env.now + 10.0)  # let the seed finish

        assert not replica.seeding and not replica.stale
        assert rs.live_replicas(cluster) == [replica]
        # The mid-seed commit is in the replica's log and row state.
        shipped = [r for r in replica.log.records
                   if r.kind == "insert" and r.txn_id > 0
                   and r.payload[1] == 9700]
        assert shipped, "the mid-seed commit never reached the replica"
        assert 9700 in replica.rows
        assert replica.rows[9700][0] == (9700, "midseed")

    def test_seed_failure_unregisters_the_partial_replica(self, rig):
        env, cluster = rig
        insert_rows(env, cluster, 1500)

        from repro.ha.placement import PlacementPolicy
        from repro.ha.replication import ReplicationManager
        replication = ReplicationManager(
            cluster, k=2, policy=PlacementPolicy(cluster, rack_width=2))
        proc = env.process(replication.protect_all(), name="protect")

        def seeding_replica():
            rs = replica_set(cluster)
            return rs is not None and any(r.seeding for r in rs.replicas)

        step_until(env, seeding_replica, dt=0.0002)
        rs = replica_set(cluster)
        replica = next(r for r in rs.replicas if r.seeding)
        # Cut the holder's link mid-image: the half-seeded copy must
        # drop out of the set entirely, not linger as servable state.
        cluster.worker(replica.holder_node_id).port.sever()
        with pytest.raises(Exception):
            env.run(until=proc)
        assert replica.stale
        assert replica not in rs.replicas
