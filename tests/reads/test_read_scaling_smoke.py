"""Smoke test for the read-scaling experiment: a shortened audited
run of both modes under the full fault schedule, plus the cross-mode
throughput-per-watt gate and same-seed determinism."""

import dataclasses

import pytest

from repro.experiments.read_scaling import (
    ReadScalingConfig,
    compare_read_scaling,
    run_read_scaling,
)

pytestmark = pytest.mark.timeout(600)

#: One quarter of the quick config's duration — long enough that the
#: whole fault schedule (bit rot, sever + restore, crash + restart)
#: lands and both failovers complete before the audit.
SMOKE = ReadScalingConfig(
    duration=60.0,
    min_requests=8_000,
    audit=True,
)

_cache: dict[str, object] = {}


def smoke_result(mode):
    if mode not in _cache:
        _cache[mode] = run_read_scaling(
            dataclasses.replace(SMOKE, mode=mode))
    return _cache[mode]


def test_replica_mode_runs_clean_under_faults():
    result = smoke_result("replica")
    assert result.ok, result.violations + result.anomalies
    assert result.audited
    assert len(result.faults_injected) == 5
    # The tier actually carried traffic ...
    assert result.tier_stats["reads_replica"] > 0
    assert result.tier_stats["cache_hits"] > 0
    # ... and every quiesced checkpoint matched its recompute.
    assert result.view_checkpoints > 0
    assert result.view_checkpoints_matched == result.view_checkpoints


def test_primary_mode_runs_clean_under_faults():
    result = smoke_result("primary")
    assert result.ok, result.violations + result.anomalies
    assert result.tier_stats == {}
    assert result.reads_completed > 0


def test_replica_mode_beats_primary_per_joule():
    results = [smoke_result("replica"), smoke_result("primary")]
    assert compare_read_scaling(results) == []


def test_same_seed_same_story():
    config = dataclasses.replace(SMOKE, duration=30.0, audit=False,
                                 min_requests=2_000)
    a = run_read_scaling(config)
    b = run_read_scaling(config)
    assert a.summary_row() == b.summary_row()
    assert a.tier_stats == b.tier_stats
    assert a.admission == b.admission
