"""Per-tenant SLO reporting split by transaction class: the engine
keeps separate read/write latency histograms and the report renders
them as separate percentile columns."""

from repro import Cluster, Environment
from repro.metrics.report import render_slo_table
from repro.traffic import ConstantArrivals, SessionEngine, TenantClass
from repro.workload import load_tpcc
from repro.workload.tpcc_schema import TpccConfig

SMALL_TPCC = TpccConfig(
    warehouses=2, districts_per_warehouse=2, customers_per_district=10,
    items=50, orders_per_district=5, order_lines_per_order=3,
)


def run_mixed_engine(duration=15.0, seed=4):
    env = Environment(seed=seed)
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=256)
    load_tpcc(cluster, SMALL_TPCC,
              owners=[cluster.workers[0], cluster.workers[1]])
    tenants = [
        TenantClass(name="mixed", users=1_000,
                    arrivals=ConstantArrivals(30.0), zipf_theta=0.5,
                    mix=(("order_status", 0.5), ("new_order", 0.5)),
                    slo_p99_ms=60_000.0),
    ]
    engine = SessionEngine(cluster, SMALL_TPCC, tenants, seed=seed,
                           batch=5, executors=4, queue_limit=500)
    env.run(until=env.process(engine.run(duration), name="traffic"))
    return engine


class TestReadWriteSplit:
    def test_tenant_report_splits_by_class_and_conserves_counts(self):
        engine = run_mixed_engine()
        row = engine.tenant_report()["mixed"]
        # Both classes actually ran ...
        assert row["read_requests"] > 0
        assert row["write_requests"] > 0
        # ... every completed request is in exactly one split ...
        assert row["read_requests"] + row["write_requests"] == row["count"]
        # ... and each split carries its own percentiles.
        for prefix in ("read", "write"):
            for stat in ("mean", "p50", "p99", "p999"):
                assert f"{prefix}_{stat}" in row
        assert row["read_p99"] > 0.0
        assert row["write_p99"] > 0.0

    def test_render_slo_table_shows_split_columns(self):
        engine = run_mixed_engine()
        table = render_slo_table(engine.tenant_report())
        for column in ("r-p50 ms", "r-p99 ms", "w-p50 ms", "w-p99 ms",
                       "reads", "writes"):
            assert column in table

    def test_render_without_split_degrades_to_dashes(self):
        table = render_slo_table({
            "plain": {"count": 10, "p50": 1.0, "p99": 2.0, "p999": 3.0,
                      "mean": 1.5, "offered": 10},
        })
        assert "r-p99 ms" in table  # column exists
        row_line = next(line for line in table.splitlines()
                        if line.lstrip().startswith("plain"))
        assert "-" in row_line  # split cells render as placeholders
