"""Materialized views: incremental folding is equivalent to a
from-scratch fold of the same committed deltas, in any batching, and
the checkpoint machinery detects genuine divergence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, Environment
from repro.reads.views import MaterializedViews


class FakeRecord:
    def __init__(self, kind, payload):
        self.kind = kind
        self.payload = payload


def make_views(refresh=0.05):
    env = Environment(seed=5)
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=64)
    return env, MaterializedViews(cluster, refresh_interval=refresh)


@st.composite
def delta_stream(draw):
    """Committed order/stock deltas plus a batching of them."""
    records = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        table = draw(st.sampled_from(["orders", "stock"]))
        if table == "orders":
            key = (draw(st.integers(1, 2)), draw(st.integers(1, 2)),
                   draw(st.integers(1, 8)))
            row = (key[0], key[1], key[2], draw(st.integers(1, 5)), 0.0)
        else:
            key = (draw(st.integers(1, 2)), draw(st.integers(1, 10)))
            row = (key[0], key[1], draw(st.integers(0, 99)))
        if draw(st.booleans()) and draw(st.booleans()):
            records.append(FakeRecord("delete", (table, key)))
        else:
            records.append(FakeRecord("insert", (table, key, row)))
    cuts = draw(st.lists(st.integers(0, max(len(records), 1)),
                         max_size=5, unique=True))
    return records, sorted(cuts)


def fold_oracle(records):
    """A dict-level reference fold of the same deltas."""
    orders: dict = {}
    stock: dict = {}
    for record in records:
        if record.kind == "delete":
            table, key = record.payload
            if table == "orders":
                w, d, o_id = key
                orders.get((w, d), {}).pop(o_id, None)
            else:
                w, item = key
                stock.get(w, {}).pop(item, None)
        else:
            table, key, values = record.payload
            if table == "orders":
                w, d, o_id = key
                orders.setdefault((w, d), {})[o_id] = tuple(values)
            else:
                w, item = key
                stock.setdefault(w, {})[item] = values[2]
    return orders, stock


@settings(max_examples=100, deadline=None)
@given(data=delta_stream())
def test_property_any_batching_folds_to_the_same_state(data):
    """Splitting the commit stream into arbitrary enqueue batches (the
    refresher's unit of work) never changes the folded state, and the
    fingerprint matches a single-pass reference fold."""
    records, cuts = data
    _env, views = make_views()
    bounds = [0] + [c for c in cuts if c <= len(records)] + [len(records)]
    ts = 100
    for lo, hi in zip(bounds, bounds[1:]):
        if hi > lo:
            ts += 1
            views.enqueue(ts, records[lo:hi], now=float(ts))
    views.drain(now=float(ts + 1))

    orders, stock = fold_oracle(records)
    assert views._fingerprint(views._orders, views._stock) == \
        views._fingerprint(orders, stock)
    # Query answers agree with the oracle state.
    for (w, d), district in orders.items():
        for o_id, row in sorted(district.items(), reverse=True):
            # The newest order in the district belongs to row[3]; the
            # view's "newest order of that customer" must be exactly it.
            hit = views.order_status(w, d, row[3])
            assert hit is not None and hit["o_id"] == o_id
            assert hit["row"] == row
            break
    for w, items in stock.items():
        low, known = views.stock_low(w, 50)
        assert known == len(items)
        assert low == sum(1 for q in items.values() if q < 50)


def test_lag_tracking_measures_enqueue_to_fold_distance():
    _env, views = make_views()
    views.enqueue(10, [FakeRecord("insert",
                                  ("stock", (1, 1), (1, 1, 5)))], now=2.0)
    views.drain(now=5.0)
    assert views.last_lag == 3.0
    assert views.max_lag == 3.0
    assert views.applied_horizon == 10


def test_checkpoint_flags_divergence_and_matches_when_clean():
    env, views = make_views()
    # Clean: empty incremental state vs empty cluster recompute.
    assert views.checkpoint("clean", env.now) is True
    # Plant divergence: a delta folded into the view that no primary
    # holds (as if a batch were double-applied).
    views.enqueue(11, [FakeRecord("insert",
                                  ("stock", (1, 7), (1, 7, 3)))], now=0.0)
    assert views.checkpoint("diverged", env.now) is False
    last = views.checkpoints[-1]
    assert last["incremental"] != last["recomputed"]
