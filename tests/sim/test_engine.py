"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(3.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [3.0]


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(5, "b"))
    env.process(proc(2, "a"))
    env.process(proc(9, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_past_raises():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_run_until_process_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 2


def test_run_until_event_never_triggers_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_process_waits_for_subprocess():
    env = Environment()
    log = []

    def child():
        yield env.timeout(4)
        log.append(("child", env.now))
        return 99

    def parent():
        value = yield env.process(child())
        log.append(("parent", env.now, value))

    env.process(parent())
    env.run()
    assert log == [("child", 4), ("parent", 4, 99)]


def test_yield_from_composition():
    env = Environment()
    trace = []

    def inner():
        yield env.timeout(1)
        trace.append(env.now)
        return "inner-result"

    def outer():
        result = yield from inner()
        trace.append(result)

    env.process(outer())
    env.run()
    assert trace == [1, "inner-result"]


def test_process_failure_propagates_to_waiter():
    env = Environment()
    caught = []

    def crasher():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter():
        try:
            yield env.process(crasher())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["boom"]


def test_unwaited_process_failure_escalates():
    env = Environment()

    def crasher():
        yield env.timeout(1)
        raise ValueError("nobody listens")

    env.process(crasher())
    with pytest.raises(SimulationError):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_event_succeed_wakes_waiter():
    env = Environment()
    signal = env.event()
    got = []

    def waiter():
        value = yield signal
        got.append((env.now, value))

    def firer():
        yield env.timeout(7)
        signal.succeed("fired")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [(7, "fired")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError())


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_unavailable_before_trigger():
    env = Environment()
    with pytest.raises(RuntimeError):
        _ = env.event().value


def test_waiting_on_already_processed_event():
    env = Environment()
    signal = env.event()
    got = []

    def firer():
        yield env.timeout(1)
        signal.succeed("early")

    def late_waiter():
        yield env.timeout(5)
        value = yield signal
        got.append((env.now, value))

    env.process(firer())
    env.process(late_waiter())
    env.run()
    assert got == [(5, "early")]


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(3)

    env.process(proc())
    assert env.peek() == 0  # process bootstrap event
    env.run()
    assert env.peek() == float("inf")


def test_process_is_alive_flag():
    env = Environment()

    def proc():
        yield env.timeout(5)

    handle = env.process(proc())
    assert handle.is_alive
    env.run()
    assert not handle.is_alive


def test_nested_processes_three_deep():
    env = Environment()

    def level3():
        yield env.timeout(1)
        return 3

    def level2():
        value = yield env.process(level3())
        return value + 10

    def level1():
        value = yield env.process(level2())
        return value + 100

    result = env.run(until=env.process(level1()))
    assert result == 113
