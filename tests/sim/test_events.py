"""Unit tests for composite events (AllOf / AnyOf)."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_allof_waits_for_all_children():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(5, value="b")
        results = yield AllOf(env, [t1, t2])
        done.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert done == [(5, ["a", "b"])]


def test_allof_empty_triggers_immediately():
    env = Environment()
    done = []

    def proc():
        results = yield AllOf(env, [])
        done.append((env.now, results))

    env.process(proc())
    env.run()
    assert done == [(0, {})]


def test_anyof_triggers_on_first_child():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(50, value="slow")
        results = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc())
    env.run(until=100)
    assert done == [(2, ["fast"])]


def test_allof_fails_if_child_fails():
    env = Environment()
    caught = []

    def crasher():
        yield env.timeout(1)
        raise RuntimeError("child died")

    def proc():
        child = env.process(crasher())
        try:
            yield AllOf(env, [child, env.timeout(10)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught == ["child died"]


def test_allof_mixed_environment_rejected():
    env1 = Environment()
    env2 = Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_allof_of_processes_collects_return_values():
    env = Environment()
    done = []

    def worker(delay, result):
        yield env.timeout(delay)
        return result

    def proc():
        children = [env.process(worker(i + 1, i * 10)) for i in range(3)]
        results = yield AllOf(env, children)
        done.append(sorted(results.values()))

    env.process(proc())
    env.run()
    assert done == [[0, 10, 20]]
