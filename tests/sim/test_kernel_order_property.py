"""Property test: calendar-queue kernel vs a reference single-heap kernel.

The batched event core (DESIGN.md §14) must dispatch in exactly the
order the seed kernel did: timed events in ``(time, seq)`` order, due
timed events before anything in the zero-delay FIFO, zero-delay events
FIFO among themselves.  The determinism goldens pin this on two big
model workloads; this test pins it on *adversarial* random schedules —
zero-delay cascades, same-timestamp cohorts landing in one calendar
bucket, sub-bucket and beyond-horizon delays, and resource requests
cancelled while queued (heap tombstones).

The reference kernel below is the seed algorithm: one global ``heapq``
keyed ``(time, seq, event)`` plus the zero-delay deque, run with the
seed's interleave rule.  It duck-types ``Environment`` closely enough
to reuse the real ``Event``/``Timeout``/``Process``/``Resource``
classes, so both kernels execute the *same* workload code and only the
scheduler differs.
"""

import collections
import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Environment, Process
from repro.sim.events import PENDING
from repro.sim.resources import Resource


class ReferenceEnvironment:
    """The seed kernel: single global heap + zero-delay FIFO."""

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._fast = collections.deque()
        self._seq = 0
        self._crashes = []
        self.events_processed = 0
        self.fast_scheduled = 0
        self.heap_scheduled = 0
        self.heap_peak = 0
        self.resource_fast_grants = 0

    @property
    def now(self):
        return self._now

    def _schedule(self, event, delay):
        if delay == 0:
            self.fast_scheduled += 1
            self._fast.append(event)
            return
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        self.heap_scheduled += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _queue_event(self, event):
        self.fast_scheduled += 1
        self._fast.append(event)

    def _call_soon(self, thunk):
        from repro.sim.events import Event

        event = Event(self)
        event.callbacks.append(lambda _e: thunk())
        event._ok = True
        event._value = None
        self._fast.append(event)

    def _note_crash(self, process, exc):
        self._crashes.append((process, exc))

    def timeout(self, delay, value=None):
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        return Process(self, generator, name=name)

    def run(self):
        heap = self._heap
        fast = self._fast
        while heap or fast:
            # The seed's interleave rule: heap entries already due
            # preempt the zero-delay FIFO; the clock advances only once
            # both are exhausted.
            if heap and heap[0][0] <= self._now:
                event = heapq.heappop(heap)[2]
            elif fast:
                event = fast.popleft()
            else:
                when, _seq, event = heapq.heappop(heap)
                self._now = when
            self.events_processed += 1
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
            if self._crashes:
                _process, exc = self._crashes[0]
                raise exc


# Delays chosen to hit every calendar regime (bucket width 0.0005,
# horizon 2048 buckets = 1.024s): zero-delay FIFO, sub-bucket folds
# into the cursor bucket, exact-duplicate cohort members, multi-bucket
# hops, and beyond-horizon pushes into the overflow tier.
DELAYS = [0.0, 0.0001, 0.00025, 0.0005, 0.0005, 0.001, 0.0013,
          0.01, 0.25, 1.5, 5.0]

step_strategy = st.tuples(
    st.sampled_from(["timeout", "hold", "cancel"]),
    st.sampled_from(DELAYS),
)
program_strategy = st.lists(
    st.lists(step_strategy, min_size=1, max_size=6),
    min_size=1, max_size=8,
)


def _execute(env, resource, program):
    """Run ``program`` on ``env``; return the dispatch trace."""
    trace = []

    def runner(pid, script):
        for step_index, (op, delay) in enumerate(script):
            if op == "timeout":
                yield env.timeout(delay)
            elif op == "hold":
                request = resource.request(priority=step_index % 3)
                yield request
                yield env.timeout(delay)
                resource.release(request)
            else:  # cancel: give up while (possibly) still queued
                request = resource.request(priority=2)
                yield env.timeout(delay if delay else 0.0001)
                granted = request._value is not PENDING
                resource.release(request)
                trace.append((env.now, pid, step_index, granted))
                continue
            trace.append((env.now, pid, step_index))

    for pid, script in enumerate(program):
        env.process(runner(pid, script), name=f"p{pid}")
    env.run()
    return trace


@settings(max_examples=120, deadline=None)
@given(program=program_strategy)
def test_calendar_kernel_matches_single_heap_reference(program):
    real_env = Environment()
    real_trace = _execute(real_env, Resource(real_env, capacity=1), program)

    ref_env = ReferenceEnvironment()
    ref_trace = _execute(ref_env, Resource(ref_env, capacity=1), program)

    assert real_trace == ref_trace
    assert real_env.now == ref_env.now
    # Same number of timed schedules on both sides: the calendar did
    # not silently reroute timed work through the zero-delay FIFO.
    assert real_env.heap_scheduled == ref_env.heap_scheduled
