"""Unit tests for Resource, Store, and utilisation tracking."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_single_unit_resource_serialises_access():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def user(tag):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(10)
        res.release(req)
        spans.append((tag, start, env.now))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert spans == [("a", 0, 10), ("b", 10, 20)]


def test_multi_unit_resource_allows_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)
    finishes = []

    def user(tag):
        yield from res.serve(10)
        finishes.append((tag, env.now))

    for tag in range(4):
        env.process(user(tag))
    env.run()
    assert finishes == [(0, 10), (1, 10), (2, 20), (3, 20)]


def test_priority_request_jumps_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        yield from res.serve(5)

    def normal():
        yield env.timeout(1)
        yield from res.serve(1)
        order.append("normal")

    def urgent():
        yield env.timeout(2)
        yield from res.serve(1, priority=-10)
        order.append("urgent")

    env.process(holder())
    env.process(normal())
    env.process(urgent())
    env.run()
    assert order == ["urgent", "normal"]


def test_release_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(proc())
    env.run()
    assert res.in_use == 0


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    served = []

    def holder():
        yield from res.serve(10)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        # Give up without ever being granted.
        res.release(req)
        yield env.timeout(0)

    def patient():
        yield env.timeout(2)
        yield from res.serve(1)
        served.append(env.now)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert served == [11]


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    done = []

    def proc():
        with res.request() as req:
            yield req
            yield env.timeout(3)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [3]
    assert res.in_use == 0


def test_utilization_integral_tracks_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield env.timeout(5)
        yield from res.serve(10)

    env.process(user())
    env.run(until=20)
    # Busy from t=5 to t=15 -> 10 busy unit-seconds.
    assert res.tracker.integral(20) == pytest.approx(10.0)


def test_utilization_since_checkpoint():
    env = Environment()
    res = Resource(env, capacity=2)

    def user(start, dur):
        yield env.timeout(start)
        yield from res.serve(dur)

    env.process(user(0, 10))
    env.process(user(0, 10))
    env.run(until=10)
    # Both units busy for the whole window -> utilisation 1.0.
    assert res.tracker.utilization_since(0, 0.0) == pytest.approx(1.0)


def test_grant_count():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield from res.serve(1)

    for _ in range(7):
        env.process(user())
    env.run()
    assert res.grant_count == 7


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(9)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(9, "late")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("put-a", env.now))
        yield store.put("b")
        times.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5)
        item = yield store.get()
        times.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in times
    assert ("put-b", 5) in times


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_refill_chain_preserves_fifo_order():
    """A get that frees room must admit blocked puts *in arrival order*,
    and each refilled item must reach the getters FIFO — the alternating
    _flow loop must keep draining until quiescent."""
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)
            log.append((f"put-{item}", env.now))

    def consumer():
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            log.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [entry[0] for entry in log] == [
        "put-a", "got-a", "put-b", "got-b", "put-c", "got-c",
    ]
    assert len(store) == 0


def test_store_put_after_get_refills_waiting_getter():
    """The classic refill ordering: a put that lands while a getter is
    already parked must flow straight through the (full) admit path."""
    env = Environment()
    store = Store(env, capacity=2)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        yield env.timeout(1)
        yield store.put("x")
        yield store.put("y")
        yield store.put("z")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == ["x", "y", "z"]


def test_cancelled_requests_tombstone_and_compact():
    """Cancelling queued requests must not disturb grant order, and
    queue_length must count live waiters only (tombstones excluded)."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def cancelled(i):
        req = res.request()
        yield env.timeout(1 + i * 0.01)
        res.release(req)  # cancel before grant
        order.append(f"cancel-{i}")
        _ = yield env.timeout(0)

    def survivor():
        req = res.request()
        yield req
        order.append("granted-survivor")
        res.release(req)

    env.process(holder())
    cancels = [env.process(cancelled(i)) for i in range(40)]
    env.process(survivor())
    env.run(until=0.5)
    # All bootstraps ran at t=0: holder owns the unit, 41 requests queued.
    assert res.queue_length == 41
    env.run(until=5)
    # All 40 cancellations happened; only the survivor still waits.
    assert res.queue_length == 1
    env.run()
    assert order[-1] == "granted-survivor"
    assert len([o for o in order if o.startswith("cancel-")]) == 40
    assert res.in_use == 0


def test_uncontended_request_counts_fast_grant():
    env = Environment()
    res = Resource(env, capacity=2)

    def user():
        yield from res.serve(1.0)

    env.process(user())
    env.process(user())
    env.run()
    assert env.resource_fast_grants == 2
    assert res.grant_count == 2
