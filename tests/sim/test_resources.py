"""Unit tests for Resource, Store, and utilisation tracking."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_single_unit_resource_serialises_access():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def user(tag):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(10)
        res.release(req)
        spans.append((tag, start, env.now))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert spans == [("a", 0, 10), ("b", 10, 20)]


def test_multi_unit_resource_allows_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)
    finishes = []

    def user(tag):
        yield from res.serve(10)
        finishes.append((tag, env.now))

    for tag in range(4):
        env.process(user(tag))
    env.run()
    assert finishes == [(0, 10), (1, 10), (2, 20), (3, 20)]


def test_priority_request_jumps_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        yield from res.serve(5)

    def normal():
        yield env.timeout(1)
        yield from res.serve(1)
        order.append("normal")

    def urgent():
        yield env.timeout(2)
        yield from res.serve(1, priority=-10)
        order.append("urgent")

    env.process(holder())
    env.process(normal())
    env.process(urgent())
    env.run()
    assert order == ["urgent", "normal"]


def test_release_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(proc())
    env.run()
    assert res.in_use == 0


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    served = []

    def holder():
        yield from res.serve(10)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        # Give up without ever being granted.
        res.release(req)
        yield env.timeout(0)

    def patient():
        yield env.timeout(2)
        yield from res.serve(1)
        served.append(env.now)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert served == [11]


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    done = []

    def proc():
        with res.request() as req:
            yield req
            yield env.timeout(3)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [3]
    assert res.in_use == 0


def test_utilization_integral_tracks_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield env.timeout(5)
        yield from res.serve(10)

    env.process(user())
    env.run(until=20)
    # Busy from t=5 to t=15 -> 10 busy unit-seconds.
    assert res.tracker.integral(20) == pytest.approx(10.0)


def test_utilization_since_checkpoint():
    env = Environment()
    res = Resource(env, capacity=2)

    def user(start, dur):
        yield env.timeout(start)
        yield from res.serve(dur)

    env.process(user(0, 10))
    env.process(user(0, 10))
    env.run(until=10)
    # Both units busy for the whole window -> utilisation 1.0.
    assert res.tracker.utilization_since(0, 0.0) == pytest.approx(1.0)


def test_grant_count():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield from res.serve(1)

    for _ in range(7):
        env.process(user())
    env.run()
    assert res.grant_count == 7


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(9)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(9, "late")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("put-a", env.now))
        yield store.put("b")
        times.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5)
        item = yield store.get()
        times.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in times
    assert ("put-b", 5) in times


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
