"""Tests for the buffer pool and the rDMA remote extension."""

import pytest

from repro.hardware import Cpu, Disk, Network, NetworkPort, SSD_SPEC, specs
from repro.metrics import CostBreakdown
from repro.sim import Environment
from repro.storage import BufferPool, BufferPoolExhaustedError, RemoteBufferExtension


class DiskPageIO:
    """Test resolver target: every page lives on one local disk."""

    def __init__(self, env, disk):
        self.env = env
        self.disk = disk

    def read(self, breakdown, priority):
        yield from self.disk.read_page(priority)

    def write(self, breakdown, priority):
        yield from self.disk.write_page(priority)


def make_pool(capacity_pages=4):
    env = Environment()
    cpu = Cpu(env, cores=2)
    disk = Disk(env, SSD_SPEC)
    io = DiskPageIO(env, disk)
    pool = BufferPool(env, cpu, capacity_pages, resolver=lambda pid: io)
    return env, pool, disk


def run(env, gen):
    return env.run(until=env.process(gen))


def test_capacity_validation():
    env = Environment()
    cpu = Cpu(env, 1)
    with pytest.raises(ValueError):
        BufferPool(env, cpu, 0, resolver=lambda pid: None)


def test_miss_then_hit():
    env, pool, disk = make_pool()

    def work():
        yield from pool.fetch(1)
        pool.unpin(1)
        yield from pool.fetch(1)
        pool.unpin(1)

    run(env, work())
    assert pool.misses == 1
    assert pool.hits == 1
    assert disk.reads == 1
    assert pool.is_resident(1)


def test_hit_is_much_cheaper_than_miss():
    env, pool, _disk = make_pool()
    times = []

    def work():
        t0 = env.now
        yield from pool.fetch(1)
        pool.unpin(1)
        times.append(env.now - t0)
        t0 = env.now
        yield from pool.fetch(1)
        pool.unpin(1)
        times.append(env.now - t0)

    run(env, work())
    assert times[1] < times[0] / 5


def test_lru_eviction():
    env, pool, disk = make_pool(capacity_pages=2)

    def work():
        for pid in (1, 2, 3):
            yield from pool.fetch(pid)
            pool.unpin(pid)

    run(env, work())
    assert pool.resident_pages == 2
    assert not pool.is_resident(1)  # LRU victim
    assert pool.is_resident(2) and pool.is_resident(3)
    assert pool.evictions == 1


def test_dirty_eviction_writes_back():
    env, pool, disk = make_pool(capacity_pages=1)

    def work():
        yield from pool.fetch(1)
        pool.unpin(1, dirty=True)
        yield from pool.fetch(2)
        pool.unpin(2)

    run(env, work())
    assert disk.writes == 1


def test_clean_eviction_no_write():
    env, pool, disk = make_pool(capacity_pages=1)

    def work():
        yield from pool.fetch(1)
        pool.unpin(1)
        yield from pool.fetch(2)
        pool.unpin(2)

    run(env, work())
    assert disk.writes == 0


def test_pinned_pages_not_evicted():
    env, pool, _disk = make_pool(capacity_pages=2)

    def work():
        yield from pool.fetch(1)  # stays pinned
        yield from pool.fetch(2)
        pool.unpin(2)
        yield from pool.fetch(3)
        pool.unpin(3)

    run(env, work())
    assert pool.is_resident(1)
    assert not pool.is_resident(2)


def test_all_pinned_raises():
    env, pool, _disk = make_pool(capacity_pages=1)

    def work():
        yield from pool.fetch(1)  # pinned
        yield from pool.fetch(2)

    with pytest.raises(BufferPoolExhaustedError):
        run(env, work())


def test_unpin_without_pin_raises():
    env, pool, _disk = make_pool()
    with pytest.raises(RuntimeError):
        pool.unpin(1)


def test_concurrent_fetch_single_io():
    """Two processes racing to the same cold page: one disk read."""
    env, pool, disk = make_pool()

    def work():
        yield from pool.fetch(1)
        pool.unpin(1)

    env.process(work())
    env.process(work())
    env.run()
    assert disk.reads == 1
    assert pool.hits == 1
    assert pool.misses == 1


def test_latch_wait_recorded_in_breakdown():
    env, pool, _disk = make_pool()
    breakdowns = [CostBreakdown(), CostBreakdown()]

    def work(i):
        yield from pool.fetch(1, breakdown=breakdowns[i])
        pool.unpin(1)

    env.process(work(0))
    env.process(work(1))
    env.run()
    # The second fetcher waited on the first one's I/O-holding latch.
    assert breakdowns[1].latching > 0
    assert breakdowns[0].disk_io > 0


def test_flush_all_writes_dirty_frames():
    env, pool, disk = make_pool(capacity_pages=4)

    def work():
        for pid in (1, 2):
            yield from pool.fetch(pid)
            pool.unpin(pid, dirty=True)
        yield from pool.fetch(3)
        pool.unpin(3)
        yield from pool.flush_all()

    run(env, work())
    assert disk.writes == 2


def test_discard_drops_frame():
    env, pool, _disk = make_pool()

    def work():
        yield from pool.fetch(1)
        pool.unpin(1)

    run(env, work())
    pool.discard(1)
    assert not pool.is_resident(1)
    pool.discard(99)  # unknown page: no-op


def test_discard_pinned_raises():
    env, pool, _disk = make_pool()

    def work():
        yield from pool.fetch(1)

    run(env, work())
    with pytest.raises(RuntimeError):
        pool.discard(1)


def test_unpinned_heap_stays_bounded():
    """10k pin/unpin cycles must not grow the eviction-candidate heap.

    Every re-pin orphans the frame's ``(stamp, page_id)`` heap entry;
    without tombstone-counted compaction the heap accretes one dead
    entry per cycle and a long run drags a million-entry heap around.
    The bound below allows one live entry per frame plus the tombstone
    allowance the lazy policy tolerates before compacting.
    """
    capacity = 8
    env, pool, _disk = make_pool(capacity)

    def work():
        for cycle in range(10_000):
            page_id = cycle % capacity   # all hits after the first lap
            yield from pool.fetch(page_id)
            pool.unpin(page_id, dirty=False)

    run(env, work())
    assert pool.hits + pool.misses == 10_000
    # Live unpinned frames <= capacity; tombstones are compacted once
    # they dominate, so the heap can never hold more than one live
    # entry per frame plus an equal number of tombstones (plus the
    # small fixed allowance below which compaction never triggers).
    assert len(pool._unpinned) <= 2 * capacity + 33
    assert pool._stale <= len(pool._unpinned)


def test_hit_ratio():
    env, pool, _disk = make_pool()

    def work():
        for _ in range(4):
            yield from pool.fetch(1)
            pool.unpin(1)

    run(env, work())
    assert pool.hit_ratio == pytest.approx(3 / 4)


class TestRemoteExtension:
    def make(self, capacity_pages=2, pool_pages=1):
        env = Environment()
        cpu = Cpu(env, 2)
        disk = Disk(env, SSD_SPEC)
        io = DiskPageIO(env, disk)
        pool = BufferPool(env, cpu, pool_pages, resolver=lambda pid: io)
        network = Network(env)
        local = NetworkPort(env, "local")
        remote = NetworkPort(env, "remote")
        pool.remote_extension = RemoteBufferExtension(
            env, network, local, remote, capacity_pages
        )
        return env, pool, disk

    def test_dirty_eviction_goes_to_remote_memory(self):
        env, pool, disk = self.make()

        def work():
            yield from pool.fetch(1)
            pool.unpin(1, dirty=True)
            yield from pool.fetch(2)
            pool.unpin(2)

        run(env, work())
        assert 1 in pool.remote_extension
        assert disk.writes == 0

    def test_clean_eviction_is_dropped_not_shipped(self):
        env, pool, disk = self.make()

        def work():
            yield from pool.fetch(1)
            pool.unpin(1)
            yield from pool.fetch(2)
            pool.unpin(2)

        run(env, work())
        assert 1 not in pool.remote_extension
        assert pool.remote_extension.puts == 0

    def test_remote_hit_faster_than_disk_on_hdd(self):
        """A page in remote memory returns faster than an HDD read."""
        from repro.hardware import HDD_SPEC

        env = Environment()
        cpu = Cpu(env, 2)
        disk = Disk(env, HDD_SPEC)
        io = DiskPageIO(env, disk)
        pool = BufferPool(env, cpu, 1, resolver=lambda pid: io)
        network = Network(env)
        pool.remote_extension = RemoteBufferExtension(
            env, network, NetworkPort(env, "l"), NetworkPort(env, "r"), 4
        )
        times = {}

        def work():
            yield from pool.fetch(1)  # miss: disk read
            pool.unpin(1, dirty=True)
            yield from pool.fetch(2)  # evicts dirty 1 to remote
            pool.unpin(2)
            t0 = env.now
            yield from pool.fetch(1)  # remote hit
            pool.unpin(1)
            times["remote"] = env.now - t0

        run(env, work())
        hdd_read = HDD_SPEC.access_seconds + specs.PAGE_BYTES / HDD_SPEC.bandwidth_bytes_per_s
        assert times["remote"] < hdd_read
        assert pool.remote_hits == 1

    def test_remote_overflow_spills_dirty_to_disk(self):
        env, pool, disk = self.make(capacity_pages=1)

        def work():
            yield from pool.fetch(1)
            pool.unpin(1, dirty=True)
            yield from pool.fetch(2)  # 1 -> remote
            pool.unpin(2, dirty=True)
            yield from pool.fetch(3)  # 2 -> remote, 1 overflows to disk
            pool.unpin(3)

        run(env, work())
        assert disk.writes == 1
        assert 2 in pool.remote_extension
        assert 1 not in pool.remote_extension

    def test_flush_all_drains_remote(self):
        env, pool, disk = self.make(capacity_pages=4)

        def work():
            yield from pool.fetch(1)
            pool.unpin(1, dirty=True)
            yield from pool.fetch(2)  # 1 evicted dirty into remote
            pool.unpin(2)
            yield from pool.flush_all()

        run(env, work())
        assert len(pool.remote_extension) == 0
        assert disk.writes == 1
