"""Property-based buffer-pool tests: random operation sequences against
a reference model of residency and write-back behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cpu, Disk, SSD_SPEC
from repro.sim import Environment
from repro.storage import BufferPool


class CountingIO:
    def __init__(self, env, disk):
        self.env = env
        self.disk = disk
        self.reads = {}
        self.writes = {}

    def io_for(self, page_id):
        outer = self

        class _IO:
            def read(self, breakdown, priority):
                outer.reads[page_id] = outer.reads.get(page_id, 0) + 1
                yield from outer.disk.read_page(priority)

            def write(self, breakdown, priority):
                outer.writes[page_id] = outer.writes.get(page_id, 0) + 1
                yield from outer.disk.write_page(priority)

        return _IO()


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=6),
    ops=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),   # page id
            st.booleans(),                            # dirty on unpin
        ),
        min_size=1, max_size=60,
    ),
)
def test_property_buffer_pool_invariants(capacity, ops):
    env = Environment()
    cpu = Cpu(env, 2)
    disk = Disk(env, SSD_SPEC)
    counter = CountingIO(env, disk)
    pool = BufferPool(env, cpu, capacity, resolver=counter.io_for)

    dirtied: set[int] = set()

    def driver():
        for page_id, dirty in ops:
            yield from pool.fetch(page_id)
            pool.unpin(page_id, dirty=dirty)
            if dirty:
                dirtied.add(page_id)

    env.run(until=env.process(driver()))

    # Residency never exceeds capacity.
    assert pool.resident_pages <= capacity
    # Every distinct page was read from disk at least once, and a page
    # is re-read only after an eviction.
    distinct = {p for p, _d in ops}
    assert set(counter.reads) == distinct
    total_reads = sum(counter.reads.values())
    assert total_reads == pool.misses
    assert pool.misses <= len(ops)
    assert pool.hits + pool.misses == len(ops)
    # Only pages that were ever dirty can have been written back.
    assert set(counter.writes) <= dirtied
    # Flush-all then: every remaining dirty frame reaches disk.
    def flusher():
        yield from pool.flush_all()

    env.run(until=env.process(flusher()))
    # After the final flush no dirty data exists anywhere but disk:
    # writing again flushes nothing.
    writes_before = dict(counter.writes)

    def flusher2():
        yield from pool.flush_all()

    env.run(until=env.process(flusher2()))
    assert counter.writes == writes_before


@settings(max_examples=20, deadline=None)
@given(
    seeds=st.integers(min_value=0, max_value=10_000),
    clients=st.integers(min_value=2, max_value=6),
)
def test_property_concurrent_fetchers_consistent_counts(seeds, clients):
    """N concurrent processes hammering a small pool: accounting stays
    consistent and nothing deadlocks."""
    import random

    rng = random.Random(seeds)
    env = Environment()
    cpu = Cpu(env, 2)
    disk = Disk(env, SSD_SPEC)
    counter = CountingIO(env, disk)
    # Capacity >= client count: every client may pin one page at once.
    capacity = clients + 2
    pool = BufferPool(env, cpu, capacity, resolver=counter.io_for)
    total_ops = [0]

    def client():
        for _ in range(10):
            page_id = rng.randint(1, 12)
            yield from pool.fetch(page_id)
            yield env.timeout(rng.random() * 0.01)
            pool.unpin(page_id, dirty=rng.random() < 0.3)
            total_ops[0] += 1

    procs = [env.process(client()) for _ in range(clients)]
    for proc in procs:
        env.run(until=proc)
    assert total_ops[0] == clients * 10
    # A fetch that finds a reserved in-flight frame counts as a hit, so
    # hits + misses == total fetches either way.
    assert pool.hits + pool.misses == total_ops[0]
    assert pool.resident_pages <= capacity
    # No frame left pinned.
    assert all(f.pins == 0 for f in pool._frames.values())
