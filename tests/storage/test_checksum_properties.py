"""Property tests for the checksum layer: round-trip for arbitrary
payloads, detection of arbitrary byte flips, and the torn-tail
discipline (a torn prefix never replays as committed)."""

import dataclasses
import zlib

import hypothesis.strategies as st
from hypothesis import given, settings
import pytest

from repro.hardware import Disk, SSD_SPEC
from repro.sim import Environment
from repro.storage.checksum import (
    IntegrityError,
    canonical_bytes,
    checksum_bytes,
    checksum_of,
    verify,
)
from repro.storage.record import RecordVersion, Schema, Column
from repro.txn.recovery import integrity_scan
from repro.txn.wal import LogManager

# Values that survive repr-canonicalisation bit-exactly: what rows and
# WAL payloads are actually made of.
scalars = st.one_of(
    st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=24),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=3),
    ),
    max_leaves=12,
)


@given(payloads)
@settings(max_examples=200, deadline=None)
def test_checksum_round_trip(payload):
    verify(payload, checksum_of(payload), where="prop")  # does not raise


@given(payloads, payloads)
@settings(max_examples=200, deadline=None)
def test_distinct_payloads_rarely_collide_and_always_differ_in_bytes(a, b):
    if canonical_bytes(a) == canonical_bytes(b):
        assert checksum_of(a) == checksum_of(b)
    # (CRC32 collisions across distinct bytes are possible but the
    # canonical-bytes equality above is the identity that matters.)


@given(payloads, st.integers(min_value=0, max_value=10**9),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=200, deadline=None)
def test_any_byte_flip_is_detected(payload, pos, bit):
    """CRC32 detects every single-byte corruption of the canonical
    serialisation (burst errors <= 32 bits are guaranteed caught)."""
    data = canonical_bytes(payload)
    index = pos % len(data)
    flipped = (data[:index]
               + bytes([data[index] ^ (1 << bit)])
               + data[index + 1:])
    assert flipped != data
    assert checksum_bytes(flipped) != zlib.crc32(data)


@given(st.lists(st.tuples(st.integers(0, 10**6), st.text(max_size=16)),
                min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_record_version_round_trip_and_garble_detection(rows):
    schema = Schema([Column("id"), Column("v", "str", width=32)],
                    key=("id",))
    for key, text in rows:
        version = RecordVersion.make(schema, (key, text), created_by=1)
        version.verify(where="prop")
        version.clean = False
        version.verify(where="prop")  # idempotent
        version.values = (key, text + "!")
        version.clean = False
        with pytest.raises(IntegrityError):
            version.verify(where="prop")


def _log(env):
    return LogManager(env, Disk(env, SSD_SPEC), name="prop")


@given(st.lists(payloads, min_size=1, max_size=6),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_torn_prefix_never_replays_as_committed(tails, torn_after):
    """Garbling any suffix of the log (the torn flush) makes
    integrity_scan discard exactly that suffix; the transactions whose
    commits fell in it never come back committed."""
    env = Environment(seed=1)
    log = _log(env)
    for txn_id, payload in enumerate(tails, start=1):
        log.append(txn_id, "update", ("t", txn_id, payload))
        log.append(txn_id, "commit")
    torn_from = min(torn_after, log.live_records - 1) + 0
    keep = log.live_records - torn_from if torn_from else log.live_records
    # Garble every record from index ``keep`` on — a torn multi-record
    # flush.
    for index in range(keep, log.live_records):
        record = log.records[index]
        log.records[index] = dataclasses.replace(
            record, payload=("§torn", record.payload)
        )
    records, discarded = integrity_scan(log, 0)
    assert discarded == log.live_records - keep
    assert len(records) == keep
    for record in records:
        record.verify(where="prop")
    # Commits inside the torn suffix are gone; only fully-durable
    # transactions can be treated as committed.
    surviving_commits = {r.txn_id for r in records if r.kind == "commit"}
    torn_commits = {
        r.txn_id for r in
        [log.records[i] for i in range(keep, log.live_records)]
    }
    assert not (surviving_commits
                & {t for t in torn_commits
                   if t not in surviving_commits})


@given(st.lists(payloads, min_size=2, max_size=5))
@settings(max_examples=60, deadline=None)
def test_mid_log_garble_raises(tails):
    env = Environment(seed=1)
    log = _log(env)
    for txn_id, payload in enumerate(tails, start=1):
        log.append(txn_id, "update", ("t", txn_id, payload))
        log.append(txn_id, "commit")
    record = log.records[0]
    log.records[0] = dataclasses.replace(record,
                                         payload=("§rot", record.payload))
    with pytest.raises(IntegrityError):
        integrity_scan(log, 0)


@given(st.lists(payloads, min_size=1, max_size=5),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_discard_tail_then_append_stays_verifiable(tails, extra):
    env = Environment(seed=1)
    log = _log(env)
    for txn_id, payload in enumerate(tails, start=1):
        log.append(txn_id, "update", ("t", txn_id, payload))
        log.append(txn_id, "commit")
    record = log.records[-1]
    log.records[log.live_records - 1] = dataclasses.replace(
        record, payload=("§torn", record.payload)
    )
    _records, discarded = integrity_scan(log, 0)
    assert discarded == 1
    log.discard_tail(discarded)
    for txn_id in range(1000, 1000 + extra):
        log.append(txn_id, "update", ("t", txn_id, "post"))
        log.append(txn_id, "commit")
    records, discarded2 = integrity_scan(log, 0)
    assert discarded2 == 0
    lsns = [r.lsn for r in records]
    assert lsns == sorted(lsns)
