"""Tests for segment placement on a node's disks."""

import pytest

from repro.hardware import Disk, HDD_SPEC, SSD_SPEC
from repro.sim import Environment
from repro.storage import DiskSpaceManager, OutOfDiskSpaceError, Segment


def make_manager(n_disks=2):
    env = Environment()
    disks = [Disk(env, SSD_SPEC, name=f"ssd{i}") for i in range(n_disks)]
    return env, disks, DiskSpaceManager(disks)


def seg(segment_id, max_pages=16):
    return Segment(segment_id, "t", max_pages=max_pages, page_bytes=8192)


def test_needs_disks():
    with pytest.raises(ValueError):
        DiskSpaceManager([])


def test_place_records_extent():
    _env, disks, mgr = make_manager()
    s = seg(1)
    disk = mgr.place(s)
    assert disk in disks
    assert mgr.used_bytes(disk) == s.extent_bytes
    assert mgr.disk_of(1) is disk
    assert mgr.holds(1)
    assert mgr.segment_count() == 1


def test_double_place_rejected():
    _env, _disks, mgr = make_manager()
    s = seg(1)
    mgr.place(s)
    with pytest.raises(ValueError):
        mgr.place(s)


def test_explicit_disk_placement():
    _env, disks, mgr = make_manager()
    s = seg(1)
    assert mgr.place(s, disk=disks[1]) is disks[1]


def test_explicit_foreign_disk_rejected():
    env, _disks, mgr = make_manager()
    foreign = Disk(env, HDD_SPEC, name="foreign")
    with pytest.raises(ValueError):
        mgr.place(seg(1), disk=foreign)


def test_balances_across_disks():
    _env, disks, mgr = make_manager(2)
    placements = [mgr.place(seg(i)) for i in range(4)]
    assert placements.count(disks[0]) == 2
    assert placements.count(disks[1]) == 2


def test_out_of_space():
    env = Environment()
    # A tiny disk: capacity for exactly one extent.
    from repro.hardware.disk import DiskSpec

    tiny = DiskSpec(
        kind="ssd", access_seconds=0.001, bandwidth_bytes_per_s=1e8,
        capacity_bytes=seg(0).extent_bytes, idle_watts=0.1, active_watts=0.2,
    )
    disk = Disk(env, tiny)
    mgr = DiskSpaceManager([disk])
    mgr.place(seg(1))
    with pytest.raises(OutOfDiskSpaceError):
        mgr.place(seg(2))
    assert not mgr.has_room_for(seg(3))


def test_evict_frees_space():
    _env, _disks, mgr = make_manager()
    s = seg(1)
    disk = mgr.place(s)
    assert mgr.evict(s) is disk
    assert mgr.used_bytes(disk) == 0
    assert not mgr.holds(1)
    with pytest.raises(KeyError):
        mgr.evict(s)


def test_disk_of_unknown():
    _env, _disks, mgr = make_manager()
    with pytest.raises(KeyError):
        mgr.disk_of(99)


def test_total_free_bytes():
    _env, disks, mgr = make_manager(2)
    before = mgr.total_free_bytes
    mgr.place(seg(1))
    assert mgr.total_free_bytes == before - seg(99).extent_bytes
