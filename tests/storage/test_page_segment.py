"""Tests for slotted pages and segments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Column, Page, PageFullError, RecordVersion, Schema
from repro.storage import Segment, SegmentFullError
from repro.storage.page import PAGE_HEADER_BYTES, SLOT_BYTES


def schema():
    return Schema(
        columns=[Column("id"), Column("payload", "str", width=64)],
        key=("id",),
    )


def version(key, payload="x" * 10, created_by=1):
    return RecordVersion.make(schema(), (key, payload), created_by=created_by)


class TestPage:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Page(1, 1, capacity_bytes=50)

    def test_insert_and_get(self):
        page = Page(1, 1)
        v = version(10)
        slot = page.insert(v)
        assert page.get(slot) is v
        assert page.live_slot_count == 1

    def test_byte_accounting(self):
        page = Page(1, 1)
        v = version(10)
        before = page.free_bytes
        page.insert(v)
        assert page.free_bytes == before - v.size_bytes - SLOT_BYTES
        assert page.used_bytes >= PAGE_HEADER_BYTES

    def test_page_fills_up(self):
        page = Page(1, 1, capacity_bytes=512)
        inserted = 0
        with pytest.raises(PageFullError):
            for i in range(100):
                page.insert(version(i))
                inserted += 1
        assert 0 < inserted < 100

    def test_remove_frees_space_and_slot_reuse(self):
        page = Page(1, 1)
        v = version(10)
        slot = page.insert(v)
        used = page.used_bytes
        removed = page.remove(slot)
        assert removed is v
        assert page.used_bytes == used - v.size_bytes
        # The freed slot is reused, so no extra slot overhead.
        slot2 = page.insert(version(11))
        assert slot2 == slot

    def test_get_empty_slot_raises(self):
        page = Page(1, 1)
        with pytest.raises(KeyError):
            page.get(0)
        slot = page.insert(version(1))
        page.remove(slot)
        with pytest.raises(KeyError):
            page.get(slot)

    def test_versions_iterates_occupied_only(self):
        page = Page(1, 1)
        s1 = page.insert(version(1))
        page.insert(version(2))
        page.remove(s1)
        keys = [v.key for _slot, v in page.versions()]
        assert keys == [2]


class TestSegment:
    def test_insert_lookup(self):
        seg = Segment(1, "t", max_pages=4, page_bytes=1024)
        loc = seg.insert_version(version(42))
        found = seg.versions_for(42)
        assert len(found) == 1
        assert found[0][:2] == loc
        assert found[0][2].key == 42

    def test_version_chain_newest_first(self):
        seg = Segment(1, "t", max_pages=4, page_bytes=1024)
        seg.insert_version(version(42, payload="old"))
        seg.insert_version(version(42, payload="new"))
        chain = seg.versions_for(42)
        assert [v.values[1] for _p, _s, v in chain] == ["new", "old"]
        assert seg.record_count == 1
        assert seg.version_count == 2

    def test_spills_to_new_pages(self):
        seg = Segment(1, "t", max_pages=10, page_bytes=512)
        for i in range(30):
            seg.insert_version(version(i))
        assert seg.page_count > 1
        assert seg.record_count == 30

    def test_segment_full(self):
        seg = Segment(1, "t", max_pages=1, page_bytes=512)
        with pytest.raises(SegmentFullError):
            for i in range(1000):
                seg.insert_version(version(i))

    def test_remove_version(self):
        seg = Segment(1, "t", max_pages=4, page_bytes=1024)
        pno, slot = seg.insert_version(version(42))
        removed = seg.remove_version(42, pno, slot)
        assert removed.key == 42
        assert seg.versions_for(42) == []
        assert seg.record_count == 0

    def test_remove_unknown_version(self):
        seg = Segment(1, "t", max_pages=4, page_bytes=1024)
        seg.insert_version(version(42))
        with pytest.raises(Exception):
            seg.remove_version(42, 3, 9)

    def test_scan_versions_physical_order(self):
        seg = Segment(1, "t", max_pages=10, page_bytes=512)
        for i in (5, 3, 9, 1):
            seg.insert_version(version(i))
        scanned = [v.key for _p, _s, v in seg.scan_versions()]
        assert scanned == [5, 3, 9, 1]  # insertion/physical order

    def test_index_scan_key_order(self):
        seg = Segment(1, "t", max_pages=10, page_bytes=512)
        for i in (5, 3, 9, 1):
            seg.insert_version(version(i))
        assert [k for k, _locs in seg.index_scan()] == [1, 3, 5, 9]
        assert [k for k, _locs in seg.index_scan(lo=3, hi=9)] == [3, 5]

    def test_min_max_keys(self):
        seg = Segment(1, "t", max_pages=10, page_bytes=512)
        for i in (5, 3, 9):
            seg.insert_version(version(i))
        assert seg.min_key() == 3
        assert seg.max_key() == 9

    def test_touched_page_numbers(self):
        seg = Segment(1, "t", max_pages=10, page_bytes=512)
        for i in range(20):
            seg.insert_version(version(i))
        all_pages = seg.touched_page_numbers()
        assert all_pages == list(range(seg.page_count))
        some = seg.touched_page_numbers(lo=0, hi=3)
        assert len(some) <= len(all_pages)

    def test_used_bytes_includes_old_versions(self):
        """The Fig. 3 measurement hook: old MVCC versions occupy space."""
        seg = Segment(1, "t", max_pages=10, page_bytes=1024)
        seg.insert_version(version(1))
        single = seg.used_bytes
        seg.insert_version(version(1))
        assert seg.used_bytes > single

    def test_page_ids_globally_unique_across_segments(self):
        seg_a = Segment(1, "t", max_pages=4, page_bytes=512)
        seg_b = Segment(2, "t", max_pages=4, page_bytes=512)
        seg_a.insert_version(version(1))
        seg_b.insert_version(version(2))
        assert seg_a.pages[0].page_id != seg_b.pages[0].page_id

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=80))
    def test_property_segment_index_consistent(self, keys):
        seg = Segment(1, "t", max_pages=50, page_bytes=512)
        counts = {}
        for k in keys:
            seg.insert_version(version(k))
            counts[k] = counts.get(k, 0) + 1
        assert seg.record_count == len(counts)
        assert seg.version_count == len(keys)
        for k, n in counts.items():
            chain = seg.versions_for(k)
            assert len(chain) == n
            for pno, slot, v in chain:
                assert seg.pages[pno].get(slot) is v
