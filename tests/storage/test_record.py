"""Tests for schemas and record versions."""

import pytest

from repro.storage import Column, RecordVersion, Schema
from repro.storage.record import VERSION_HEADER_BYTES


def order_schema():
    return Schema(
        columns=[
            Column("o_id", "int"),
            Column("o_w_id", "int"),
            Column("o_carrier", "str", width=16),
            Column("o_amount", "float"),
        ],
        key=("o_w_id", "o_id"),
    )


def test_column_validation():
    with pytest.raises(ValueError):
        Column("bad", "blob")
    with pytest.raises(ValueError):
        Column("s", "str", width=0)


def test_schema_validation():
    with pytest.raises(ValueError):
        Schema(columns=[], key=("x",))
    with pytest.raises(ValueError):
        Schema(columns=[Column("a")], key=())
    with pytest.raises(ValueError):
        Schema(columns=[Column("a")], key=("b",))
    with pytest.raises(ValueError):
        Schema(columns=[Column("a"), Column("a")], key=("a",))


def test_composite_key_extraction():
    schema = order_schema()
    assert schema.key_of((7, 3, "x", 1.5)) == (3, 7)


def test_single_key_is_scalar():
    schema = Schema(columns=[Column("id"), Column("v")], key=("id",))
    assert schema.key_of((42, 0)) == 42


def test_sizeof_counts_columns():
    schema = order_schema()
    size = schema.sizeof((1, 2, "abcd", 3.0))
    assert size == 8 + 8 + (2 + 4) + 8


def test_sizeof_caps_strings_at_declared_width():
    schema = Schema(columns=[Column("s", "str", width=4)], key=("s",))
    assert schema.sizeof(("abcdefgh",)) == 2 + 4


def test_sizeof_wrong_arity():
    schema = order_schema()
    with pytest.raises(ValueError):
        schema.sizeof((1, 2))


def test_validate_types():
    schema = order_schema()
    schema.validate((1, 2, "ok", 3.5))
    with pytest.raises(TypeError):
        schema.validate(("1", 2, "ok", 3.5))
    with pytest.raises(TypeError):
        schema.validate((1, 2, 99, 3.5))
    schema.validate((1, 2, "ok", 3))  # int acceptable as float


def test_project():
    schema = order_schema()
    assert schema.project((1, 2, "c", 4.0), ["o_carrier", "o_id"]) == ("c", 1)
    with pytest.raises(KeyError):
        schema.project((1, 2, "c", 4.0), ["nope"])


def test_record_version_make():
    schema = order_schema()
    version = RecordVersion.make(schema, (5, 1, "x", 9.0), created_by=77)
    assert version.key == (1, 5)
    assert version.created_by == 77
    assert version.created_ts is None
    assert version.deleted_by is None
    assert version.size_bytes == schema.sizeof((5, 1, "x", 9.0)) + VERSION_HEADER_BYTES
