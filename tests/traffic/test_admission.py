"""Admission control: token buckets, the bounded queue, and exact
offered = admitted + rejected + shed accounting."""

import pytest

from repro.sim.engine import Environment
from repro.traffic import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionController,
    Request,
    TokenBucket,
)


class TestTokenBucket:
    def test_whole_or_nothing(self):
        b = TokenBucket(rate=10.0, burst=100.0)
        assert b.try_take(100, now=0.0)
        assert not b.try_take(1, now=0.0)

    def test_refills_with_time_up_to_burst(self):
        b = TokenBucket(rate=10.0, burst=50.0)
        assert b.try_take(50, now=0.0)
        assert not b.try_take(20, now=1.0)   # only 10 back
        assert b.try_take(20, now=2.0)
        b.try_take(b.available(100.0), now=100.0)
        assert b.available(1e6) == pytest.approx(50.0)  # capped at burst

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def make(self, queue_limit=100, buckets=None):
        env = Environment()
        return env, AdmissionController(env, queue_limit=queue_limit,
                                        buckets=buckets)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(tenant="t", arrival=0.0, count=0)

    def test_admit_then_shed_at_queue_limit(self):
        env, ac = self.make(queue_limit=100)
        assert ac.offer(Request("web", 0.0, count=60)) == ADMITTED
        assert ac.offer(Request("web", 0.0, count=40)) == ADMITTED
        assert ac.offer(Request("web", 0.0, count=1)) == SHED
        assert ac.queue_depth == 100
        assert ac.offered == 101
        assert ac.admitted == 100
        assert ac.shed == 1
        assert ac.offered == ac.admitted + ac.rejected + ac.shed

    def test_rate_limit_rejects_before_queue(self):
        env, ac = self.make(buckets={"batch": TokenBucket(rate=1.0,
                                                          burst=10.0)})
        assert ac.offer(Request("batch", 0.0, count=10)) == ADMITTED
        assert ac.offer(Request("batch", 0.0, count=1)) == REJECTED
        # Another tenant has no bucket and sails through.
        assert ac.offer(Request("web", 0.0, count=1)) == ADMITTED
        assert ac.counters_for("batch").rejected == 1
        assert ac.counters_for("web").rejected == 0

    def test_take_is_fifo_and_returns_none_after_close(self):
        env, ac = self.make()
        ac.offer(Request("a", 0.0, count=1))
        ac.offer(Request("b", 0.0, count=2))
        taken = []

        def consumer():
            while True:
                request = yield from ac.take()
                if request is None:
                    return
                taken.append(request.tenant)

        proc = env.process(consumer())

        def closer():
            yield env.timeout(1.0)
            ac.close()

        env.process(closer())
        env.run(until=proc)
        assert taken == ["a", "b"]
        assert ac.queue_depth == 0

    def test_offer_wakes_blocked_consumer(self):
        env, ac = self.make()
        got = []

        def consumer():
            request = yield from ac.take()
            got.append((env.now, request.tenant))

        proc = env.process(consumer())

        def producer():
            yield env.timeout(5.0)
            ac.offer(Request("late", arrival=env.now, count=1))

        env.process(producer())
        env.run(until=proc)
        assert got == [(5.0, "late")]

    def test_completion_and_abandon_accounting(self):
        env, ac = self.make()
        r = Request("web", 0.0, count=30)
        ac.offer(r)
        ac.note_completed(Request("web", 0.0, count=20))
        ac.note_abandoned(Request("web", 0.0, count=10))
        assert ac.completed == 20
        assert ac.abandoned == 10
        stats = ac.stats()
        assert stats["completed"] == 20
        assert stats["abandoned"] == 10
        assert ac.counters_for("web").as_dict()["abandoned"] == 10

    def test_offer_after_close_raises(self):
        env, ac = self.make()
        ac.close()
        with pytest.raises(RuntimeError):
            ac.offer(Request("web", 0.0, count=1))

    def test_shed_fraction(self):
        env, ac = self.make(queue_limit=10)
        ac.offer(Request("web", 0.0, count=10))
        ac.offer(Request("web", 0.0, count=10))
        assert ac.shed_fraction() == pytest.approx(0.5)
