"""Arrival processes: shapes, composition, and seeded Poisson draws."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.traffic import (
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowd,
    TraceArrivals,
    sample_poisson,
)


class TestShapes:
    def test_constant(self):
        a = ConstantArrivals(42.0)
        assert a.rate(0) == a.rate(1e6) == 42.0
        with pytest.raises(ValueError):
            ConstantArrivals(-1.0)

    def test_diurnal_peak_and_trough(self):
        a = DiurnalArrivals(base_rate=100.0, amplitude=0.5, period=400.0)
        assert a.rate(0) == pytest.approx(100.0)
        assert a.rate(100) == pytest.approx(150.0)   # peak at period/4
        assert a.rate(300) == pytest.approx(50.0)    # trough at 3/4
        assert a.rate(400) == pytest.approx(100.0)   # periodic

    def test_diurnal_phase_shifts_the_peak(self):
        a = DiurnalArrivals(base_rate=100.0, amplitude=0.5, period=400.0,
                            phase=100.0)
        assert a.rate(200) == pytest.approx(150.0)

    def test_diurnal_full_amplitude_clamps_at_zero(self):
        a = DiurnalArrivals(base_rate=100.0, amplitude=1.0, period=400.0)
        assert a.rate(300) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=1.0, amplitude=1.5)

    def test_flash_crowd_envelope(self):
        a = FlashCrowd(peak_rate=200.0, start=100.0, ramp=50.0,
                       hold=100.0, decay=25.0)
        assert a.rate(99.9) == 0.0
        assert a.rate(125.0) == pytest.approx(100.0)      # mid-ramp
        assert a.rate(150.0) == pytest.approx(200.0)      # ramp done
        assert a.rate(200.0) == pytest.approx(200.0)      # holding
        assert a.rate(275.0) == pytest.approx(200.0 * math.exp(-1.0))
        assert a.rate(10_000.0) < 1e-9

    def test_trace_interpolates_and_holds_ends(self):
        a = TraceArrivals(points=((10.0, 0.0), (20.0, 100.0),
                                  (40.0, 50.0)))
        assert a.rate(0.0) == 0.0           # held before first point
        assert a.rate(15.0) == pytest.approx(50.0)
        assert a.rate(30.0) == pytest.approx(75.0)
        assert a.rate(100.0) == 50.0        # held after last point
        with pytest.raises(ValueError):
            TraceArrivals(points=((10.0, 1.0), (10.0, 2.0)))
        with pytest.raises(ValueError):
            TraceArrivals(points=((0.0, -1.0),))


class TestComposition:
    def test_add_sums_rates(self):
        a = ConstantArrivals(10.0) + ConstantArrivals(5.0)
        assert a.rate(0) == pytest.approx(15.0)

    def test_add_flattens_nested_composites(self):
        a = (ConstantArrivals(1.0) + ConstantArrivals(2.0)) \
            + ConstantArrivals(3.0)
        assert len(a.parts) == 3
        assert a.rate(0) == pytest.approx(6.0)

    def test_scaled(self):
        a = ConstantArrivals(10.0).scaled(2.5)
        assert a.rate(0) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            ConstantArrivals(1.0).scaled(-1.0)

    def test_mean_rate(self):
        a = DiurnalArrivals(base_rate=100.0, amplitude=0.6, period=100.0)
        # A full period averages back to the base rate.
        assert a.mean_rate(0.0, 100.0) == pytest.approx(100.0, rel=0.01)


class TestPoisson:
    def test_zero_and_negative_intensity(self):
        rng = random.Random(1)
        assert sample_poisson(rng, 0.0) == 0
        assert sample_poisson(rng, -5.0) == 0

    def test_seed_replayable(self):
        draws_a = [sample_poisson(random.Random(7), lam)
                   for lam in (0.5, 3.0, 80.0, 900.0)]
        draws_b = [sample_poisson(random.Random(7), lam)
                   for lam in (0.5, 3.0, 80.0, 900.0)]
        assert draws_a == draws_b

    @pytest.mark.parametrize("lam", [0.5, 4.0, 60.0, 2000.0])
    def test_moments_match(self, lam):
        """Mean ~= lam and variance ~= lam on both sampler paths
        (Knuth below the switchover, normal approximation above)."""
        rng = random.Random(42)
        n = 4000
        draws = [sample_poisson(rng, lam) for _ in range(n)]
        mean = sum(draws) / n
        var = sum((d - mean) ** 2 for d in draws) / n
        assert mean == pytest.approx(lam, rel=0.15)
        assert var == pytest.approx(lam, rel=0.30)
        assert all(d >= 0 for d in draws)

    @given(lam=st.floats(min_value=0.0, max_value=5_000.0,
                         allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_never_negative(self, lam, seed):
        assert sample_poisson(random.Random(seed), lam) >= 0
