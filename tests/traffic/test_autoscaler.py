"""The closed-loop autoscaler: signals, actions, and the drain guard."""

import pytest

from repro import Cluster, Environment
from repro.cluster import PolicyThresholds, ThresholdPolicy
from repro.cluster.forecasting import LoadForecaster, WorkloadHint
from repro.cluster.monitor import NodeSample
from repro.core import PhysiologicalPartitioning, Rebalancer
from repro.traffic import (
    AdmissionController,
    Autoscaler,
    AutoscalerConfig,
    Request,
)
from repro.workload import load_tpcc
from repro.workload.tpcc_schema import WAREHOUSE_PARTITIONED, TpccConfig

TPCC = TpccConfig(
    warehouses=4, districts_per_warehouse=2, customers_per_district=10,
    items=50, orders_per_district=5, order_lines_per_order=3,
)


def make_sample(node_id=0, cpu=0.0, time=0.0):
    return NodeSample(
        time=time, node_id=node_id, cpu_utilization=cpu,
        disk_utilization=0.0, iops=0.0, net_bytes=0,
        buffer_hit_ratio=1.0, partition_stats=[],
    )


def build(initially_active=1, queue_limit=10_000):
    env = Environment()
    cluster = Cluster(env, node_count=3,
                      initially_active=initially_active,
                      buffer_pages_per_node=256, boot_seconds=1.0)
    load_tpcc(cluster, TPCC, owners=[cluster.workers[0]])
    admission = AdmissionController(env, queue_limit=queue_limit)
    rebalancer = Rebalancer(cluster, PhysiologicalPartitioning())
    autoscaler = Autoscaler(
        cluster, rebalancer, list(WAREHOUSE_PARTITIONED),
        admission=admission,
        config=AutoscalerConfig(interval=1.0, cooldown_intervals=2,
                                queue_pressure_per_node=100),
    )
    return env, cluster, admission, autoscaler


class TestSignals:
    def test_queue_pressure_on_backlog(self):
        env, cluster, admission, scaler = build()
        assert scaler._queue_pressure() is None
        admission.offer(Request("web", 0.0, count=150))
        reason = scaler._queue_pressure()
        assert reason is not None and "backlog" in reason

    def test_queue_pressure_on_shedding(self):
        env, cluster, admission, scaler = build(queue_limit=10)
        admission.offer(Request("web", 0.0, count=10))
        admission.offer(Request("web", 0.0, count=5))   # shed
        reason = scaler._queue_pressure()
        assert reason is not None and "shed" in reason
        # The delta resets: no new shedding, no new pressure (the
        # backlog alone is under the bound).
        assert scaler._queue_pressure() is None

    def test_drain_guard(self):
        env, cluster, admission, scaler = build()
        assert scaler._drained()
        admission.offer(Request("web", 0.0, count=1))
        assert not scaler._drained()

    def test_forecast_cold_needs_every_node_cold(self):
        env, cluster, admission, scaler = build()
        f = scaler.forecaster
        for t in (0.0, 5.0):
            f.observe(make_sample(node_id=0, cpu=0.02, time=t))
            f.observe(make_sample(node_id=1, cpu=0.9, time=t))
        samples = [make_sample(node_id=0, cpu=0.02, time=5.0),
                   make_sample(node_id=1, cpu=0.9, time=5.0)]
        assert not scaler._forecast_cold(samples)
        assert scaler._forecast_cold(samples[:1])

    def test_hint_reaches_forecaster(self):
        env, cluster, admission, scaler = build()
        scaler.hint(WorkloadHint(start=10.0, end=20.0,
                                 expected_utilization=0.9))
        f = scaler.forecaster
        f.observe(make_sample(cpu=0.1, time=0.0))
        f.observe(make_sample(cpu=0.1, time=5.0))
        assert f.predict(0, now=12.0, horizon=0.0) == pytest.approx(0.9)


class TestActions:
    def test_scale_out_powers_on_standby_and_moves_data(self):
        env, cluster, admission, scaler = build(initially_active=1)
        assert cluster.active_node_count == 1
        env.run(until=env.process(scaler._scale_out(0, "test pressure")))
        assert cluster.active_node_count == 2
        assert len(scaler.events) == 1
        event = scaler.events[0]
        assert event.action == "scale-out"
        assert event.reason == "test pressure"
        newcomer = cluster.worker(event.node_id)
        assert newcomer.disk_space.segment_count() > 0

    def test_scale_out_without_standby_is_a_noop(self):
        env, cluster, admission, scaler = build(initially_active=3)
        env.run(until=env.process(scaler._scale_out(0, "x")))
        assert scaler.events == []

    def test_scale_in_consolidates_and_powers_off(self):
        env, cluster, admission, scaler = build(initially_active=1)
        env.run(until=env.process(scaler._scale_out(0, "grow")))
        victim = scaler.events[0].node_id
        env.run(until=env.process(scaler._scale_in([victim])))
        assert cluster.active_node_count == 1
        assert not cluster.worker(victim).is_active
        assert scaler.events[-1].action == "scale-in"

    def test_scale_in_never_targets_master(self):
        env, cluster, admission, scaler = build(initially_active=2)
        env.run(until=env.process(
            scaler._scale_in([cluster.master.node_id])))
        assert all(e.action != "scale-in" for e in scaler.events)
        assert cluster.active_node_count == 2

    def test_scale_in_respects_min_active_floor(self):
        env, cluster, admission, scaler = build(initially_active=1)
        scaler.config.min_active_nodes = 1
        env.run(until=env.process(scaler._scale_in([0])))
        assert cluster.active_node_count == 1


class TestLoop:
    def test_loop_scales_out_under_sustained_queue_pressure(self):
        """Even with idle CPUs, a standing admission backlog must
        recruit a node — open-loop overload shows up in the queue
        before it shows up in utilisation."""
        env, cluster, admission, scaler = build(initially_active=1)
        admission.offer(Request("web", 0.0, count=5_000))
        env.process(scaler.run(until=30.0), name="autoscaler")
        env.run(until=30.0)
        scaler.stop()
        assert cluster.active_node_count >= 2
        assert any(e.action == "scale-out" for e in scaler.events)

    def test_loop_respects_cooldown(self):
        env, cluster, admission, scaler = build(initially_active=1)
        # Permanent pressure: both standbys get recruited, but the
        # second action must wait out the cooldown rounds.
        admission.offer(Request("web", 0.0, count=10_000))
        env.process(scaler.run(until=60.0), name="autoscaler")
        env.run(until=60.0)
        scaler.stop()
        outs = [e for e in scaler.events if e.action == "scale-out"]
        assert len(outs) == 2     # only two standby nodes exist
        gap = outs[1].time - outs[0].time
        assert gap >= (scaler.config.cooldown_intervals
                       * scaler.config.interval)
