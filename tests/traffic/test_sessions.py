"""The virtual-session engine: Zipf key skew, cohort batching, and
bit-reproducible open-loop runs."""

import random

import pytest

from repro import Cluster, Environment
from repro.traffic import (
    ConstantArrivals,
    SessionEngine,
    TenantClass,
    TenantTpccContext,
    ZipfKeyChooser,
)
from repro.workload import load_tpcc
from repro.workload.tpcc_schema import TpccConfig

SMALL_TPCC = TpccConfig(
    warehouses=2, districts_per_warehouse=2, customers_per_district=10,
    items=50, orders_per_district=5, order_lines_per_order=3,
)


class TestZipfKeyChooser:
    def test_ranks_in_range(self):
        z = ZipfKeyChooser(8, theta=0.9, rng=random.Random(1))
        ranks = [z.rank() for _ in range(500)]
        assert all(0 <= r < 8 for r in ranks)

    def test_skew_favours_low_ranks(self):
        z = ZipfKeyChooser(8, theta=0.99, rng=random.Random(2))
        ranks = [z.rank() for _ in range(3000)]
        assert ranks.count(0) > ranks.count(7) * 2

    def test_theta_zero_is_roughly_uniform(self):
        z = ZipfKeyChooser(4, theta=0.0, rng=random.Random(3))
        ranks = [z.rank() for _ in range(4000)]
        for r in range(4):
            assert ranks.count(r) == pytest.approx(1000, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyChooser(0, theta=0.9, rng=random.Random(0))
        with pytest.raises(ValueError):
            ZipfKeyChooser(4, theta=-0.1, rng=random.Random(0))


class TestTenantClass:
    def test_needs_users(self):
        with pytest.raises(ValueError):
            TenantClass(name="x", users=0,
                        arrivals=ConstantArrivals(1.0))


def make_cluster(seed=0):
    env = Environment(seed=seed)
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=256)
    load_tpcc(cluster, SMALL_TPCC,
              owners=[cluster.workers[0], cluster.workers[1]])
    return env, cluster


def make_tenants():
    return [
        TenantClass(name="web", users=1_000,
                    arrivals=ConstantArrivals(40.0),
                    zipf_theta=0.95, slo_p99_ms=5_000.0),
        TenantClass(name="batch", users=10,
                    arrivals=ConstantArrivals(20.0),
                    zipf_theta=0.0, hot_offset=1, rate_limit=15.0),
    ]


def run_engine(seed=0, duration=20.0):
    env, cluster = make_cluster(seed)
    engine = SessionEngine(cluster, SMALL_TPCC, make_tenants(),
                           seed=seed, batch=10, executors=4,
                           queue_limit=500)
    env.run(until=env.process(engine.run(duration), name="traffic"))
    return engine


class TestSessionEngine:
    def test_tenant_context_uses_hot_offset(self):
        env, cluster = make_cluster()
        zipf = ZipfKeyChooser(2, theta=3.0, rng=random.Random(5))
        ctx = TenantTpccContext(cluster, SMALL_TPCC, "mvcc",
                                rng=random.Random(6), zipf=zipf,
                                hot_offset=1)
        picks = [ctx.random_warehouse() for _ in range(300)]
        assert set(picks) <= {1, 2}
        # theta=3 makes rank 0 dominate; offset 1 rotates it onto
        # warehouse 2.
        assert picks.count(2) > picks.count(1)

    def test_conservation_and_rate_limit(self):
        engine = run_engine()
        stats = engine.admission.stats()
        assert stats["offered"] > 0
        assert stats["offered"] == (stats["admitted"] + stats["rejected"]
                                    + stats["shed"])
        # Fully drained: every admitted request completed or abandoned.
        assert stats["admitted"] == stats["completed"] + stats["abandoned"]
        assert engine.admission.queue_depth == 0
        # The batch tenant offers ~20/s against a 15/s contract: the
        # token bucket must have rejected some of it.
        assert engine.admission.counters_for("batch").rejected > 0
        assert engine.admission.counters_for("web").rejected == 0

    def test_latency_is_weighted_by_cohort_size(self):
        engine = run_engine()
        report = engine.tenant_report()
        for name, row in report.items():
            # One histogram observation per *logical* request, not per
            # executed cohort.
            assert row["count"] == row["completed"]
            if row["completed"]:
                assert row["p50"] > 0
                assert row["p99"] >= row["p50"]
        assert report["web"]["slo_p99_ms"] == 5_000.0
        assert "slo_p99_ms" not in report["batch"]

    def test_completions_series_sums_to_completed(self):
        engine = run_engine()
        total = sum(v for _t, v in engine.completions.points)
        assert total == engine.completed_total

    def test_bit_identical_replay(self):
        a = run_engine(seed=3)
        b = run_engine(seed=3)
        assert a.admission.stats() == b.admission.stats()
        assert a.tenant_report() == b.tenant_report()
        assert a.completions.points == b.completions.points
        assert a.results_by_kind == b.results_by_kind

    def test_different_seed_different_run(self):
        a = run_engine(seed=3)
        b = run_engine(seed=4)
        assert a.completions.points != b.completions.points

    def test_validation(self):
        env, cluster = make_cluster()
        with pytest.raises(ValueError):
            SessionEngine(cluster, SMALL_TPCC, [])
        with pytest.raises(ValueError):
            SessionEngine(cluster, SMALL_TPCC, make_tenants(), batch=0)
