"""Fuzzy checkpoints: bounded REDO that reconstructs committed state.

The contract under test: a checkpoint image (the committed rows at the
checkpoint instant, well-defined under MVCC even with transactions in
flight) plus the WAL suffix from the checkpoint's ``redo_lsn`` rebuilds
exactly the state a full from-scratch replay would — so the records
below the horizon can be recycled.
"""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.txn import recovery
from repro.txn.checkpoint import (
    CheckpointManager,
    CheckpointRecord,
    take_worker_checkpoint,
)


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])
    return env, cluster


def run(env, gen):
    return env.run(until=env.process(gen))


def scratch_partition(cluster, table="kv"):
    """A blank partition to replay into, NOT attached to any worker."""
    return cluster.catalog.new_partition(table, 0)


def committed_rows(partition):
    rows = {}
    for seg in partition.segments.values():
        for _p, _s, version in seg.scan_versions():
            if version.deleted_ts is None:
                rows[version.key] = tuple(version.values)
    return rows


def write_batch(cluster, lo, hi, tag):
    def work():
        txn = cluster.txns.begin()
        for i in range(lo, hi):
            yield from cluster.master.insert("kv", (i, f"{tag}-{i}"), txn)
        yield from cluster.txns.commit(txn)
    return work


def test_checkpoint_record_carries_redo_lsn(rig):
    env, cluster = rig
    worker = cluster.workers[0]
    run(env, write_batch(cluster, 0, 10, "pre")())

    def checkpoint():
        return (yield from take_worker_checkpoint(worker,
                                                  cluster.master.gpt))

    lsn, record = run(env, checkpoint())
    assert isinstance(record, CheckpointRecord)
    assert record.active_txns == ()           # nothing in flight
    assert record.redo_lsn == lsn             # so REDO starts at the record
    assert worker.wal.last_checkpoint_lsn == lsn
    assert worker.wal.last_checkpoint_redo_lsn == lsn
    images = worker.checkpoint_images
    assert len(images) == 1
    (image,) = images.values()
    assert len(image.rows) == 10


def test_recovery_replays_only_post_checkpoint_records(rig):
    """The headline property: after checkpoint + more commits + crash,
    REDO analyzes only the suffix behind the checkpoint, loads the rest
    from the image, and the result equals the live committed state."""
    env, cluster = rig
    worker = cluster.workers[0]
    run(env, write_batch(cluster, 0, 20, "pre")())

    def checkpoint():
        return (yield from take_worker_checkpoint(worker,
                                                  cluster.master.gpt))

    run(env, checkpoint())
    run(env, write_batch(cluster, 20, 25, "post")())

    def mutate():
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 3, (3, "updated"), txn)
        yield from cluster.master.delete("kv", 7, txn)
        yield from cluster.txns.commit(txn)

    run(env, mutate())

    live = committed_rows(next(iter(worker.partitions.values())))
    pid = next(iter(worker.partitions))
    image = worker.checkpoint_images[pid]

    scratch = scratch_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, scratch, "kv",
                                           image=image)
    assert committed_rows(scratch) == live
    assert report.image_rows == 20
    # Only the post-checkpoint suffix was analyzed: 5 inserts + 1 update
    # + 1 delete + commits/aborts, nowhere near the 20 pre-image inserts.
    assert report.redone_inserts == 5
    assert report.analyzed_records < 20
    assert report.start_lsn == worker.wal.last_checkpoint_redo_lsn


def test_image_plus_suffix_equals_full_replay(rig):
    env, cluster = rig
    worker = cluster.workers[0]
    run(env, write_batch(cluster, 0, 15, "a")())

    def checkpoint():
        return (yield from take_worker_checkpoint(worker,
                                                  cluster.master.gpt))

    run(env, checkpoint())
    run(env, write_batch(cluster, 15, 30, "b")())

    pid = next(iter(worker.partitions))
    image = worker.checkpoint_images[pid]

    fast = scratch_partition(cluster)
    recovery.recover_worker_table(worker.wal, fast, "kv", image=image)
    full = scratch_partition(cluster)
    recovery.recover_worker_table(worker.wal, full, "kv",
                                  from_checkpoint=False)
    assert committed_rows(fast) == committed_rows(full)


def test_fuzzy_checkpoint_mid_transaction(rig):
    """A checkpoint taken while a transaction is mid-flight must set
    ``redo_lsn`` back to that transaction's first record, and recovery
    must still reproduce the committed state (the in-flight transaction
    commits after the checkpoint)."""
    env, cluster = rig
    worker = cluster.workers[0]
    run(env, write_batch(cluster, 0, 5, "pre")())

    captured = {}

    def interleaved():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (100, "inflight"), txn)
        lsn, record = yield from take_worker_checkpoint(
            worker, cluster.master.gpt
        )
        captured["lsn"], captured["record"] = lsn, record
        yield from cluster.master.insert("kv", (101, "later"), txn)
        yield from cluster.txns.commit(txn)

    run(env, interleaved())
    record = captured["record"]
    assert record.active_txns != ()
    assert record.redo_lsn < captured["lsn"]

    live = committed_rows(next(iter(worker.partitions.values())))
    pid = next(iter(worker.partitions))
    image = worker.checkpoint_images[pid]
    # The image must NOT contain the in-flight rows...
    assert 100 not in {r[0] for r in image.rows}
    # ...yet recovery reproduces them from the suffix.
    scratch = scratch_partition(cluster)
    recovery.recover_worker_table(worker.wal, scratch, "kv", image=image)
    assert committed_rows(scratch) == live
    assert live[100] == (100, "inflight")


def test_stale_image_is_ignored(rig):
    """An image from an older checkpoint (a newer checkpoint record
    exists in the log) must not be loaded — recovery falls back to
    replaying from the newer checkpoint's own semantics."""
    env, cluster = rig
    worker = cluster.workers[0]
    run(env, write_batch(cluster, 0, 5, "pre")())

    def checkpoint():
        return (yield from take_worker_checkpoint(worker,
                                                  cluster.master.gpt))

    run(env, checkpoint())
    pid = next(iter(worker.partitions))
    stale = worker.checkpoint_images[pid]
    run(env, write_batch(cluster, 5, 8, "mid")())
    run(env, checkpoint())                    # newer checkpoint, new image

    scratch = scratch_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, scratch, "kv",
                                           image=stale)
    assert report.image_rows == 0             # stale image rejected


def test_manager_recycles_behind_horizon(rig):
    env, cluster = rig
    worker = cluster.workers[0]
    worker.wal.segment_records = 8
    run(env, write_batch(cluster, 0, 40, "bulk")())
    manager = CheckpointManager(cluster, interval=5.0)

    def one_round():
        yield from manager.checkpoint_all()

    before = worker.wal.live_records
    run(env, one_round())
    assert manager.checkpoints_taken >= 1
    assert manager.records_recycled > 0
    assert worker.wal.live_records < before
    # Everything below the redo point is gone; the checkpoint survives.
    assert worker.wal.records[0].lsn >= \
        manager.last_horizons[worker.node_id]
    assert any(r.kind == "checkpoint" for r in worker.wal.records)


def test_manager_until_bound_with_drained_env(rig):
    """A manager whose ``until`` is already in the past must exit at its
    first wakeup check without checkpointing — the drained-environment
    regression that used to schedule a tick past the bound."""
    env, cluster = rig
    run(env, write_batch(cluster, 0, 5, "x")())
    env.run()                                  # drain completely
    now = env.now
    manager = CheckpointManager(cluster, interval=10.0, until=now).start()
    env.run()
    assert manager.checkpoints_taken == 0
    assert env.now == now
