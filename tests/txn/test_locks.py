"""MGL-RX lock-manager tests."""

import pytest

from repro.metrics import CostBreakdown
from repro.sim import Environment
from repro.txn import LockManager, LockMode, LockTimeoutError
from repro.txn.locks import compatible, supremum


class TestMatrix:
    def test_shared_modes_compatible(self):
        assert compatible(LockMode.S, LockMode.S)
        assert compatible(LockMode.IS, LockMode.IX)
        assert compatible(LockMode.IX, LockMode.IX)

    def test_exclusive_blocks_everything(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)
            assert not compatible(mode, LockMode.X)

    def test_six_semantics(self):
        assert compatible(LockMode.SIX, LockMode.IS)
        assert not compatible(LockMode.SIX, LockMode.IX)
        assert not compatible(LockMode.SIX, LockMode.S)

    def test_supremum(self):
        assert supremum(LockMode.S, LockMode.S) is LockMode.S
        assert supremum(LockMode.S, LockMode.IX) is LockMode.SIX
        assert supremum(LockMode.IS, LockMode.X) is LockMode.X


def run(env, gen):
    return env.run(until=env.process(gen))


def test_immediate_grant():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.acquire(1, "r", LockMode.S)

    run(env, work())
    assert lm.mode_held(1, "r") is LockMode.S


def test_compatible_concurrent_grants():
    env = Environment()
    lm = LockManager(env)

    def work(txn):
        yield from lm.acquire(txn, "r", LockMode.S)

    env.process(work(1))
    env.process(work(2))
    env.run()
    assert lm.holders("r") == {1: LockMode.S, 2: LockMode.S}


def test_exclusive_waits_for_release():
    env = Environment()
    lm = LockManager(env)
    order = []

    def reader():
        yield from lm.acquire(1, "r", LockMode.S)
        yield env.timeout(5)
        lm.release(1, "r")
        order.append(("released", env.now))

    def writer():
        yield env.timeout(1)
        yield from lm.acquire(2, "r", LockMode.X)
        order.append(("granted", env.now))

    env.process(reader())
    env.process(writer())
    env.run()
    assert order == [("released", 5), ("granted", 5)]


def test_lock_wait_recorded_in_breakdown():
    env = Environment()
    lm = LockManager(env)
    breakdown = CostBreakdown()

    def holder():
        yield from lm.acquire(1, "r", LockMode.X)
        yield env.timeout(3)
        lm.release_all(1)

    def waiter():
        yield env.timeout(1)
        yield from lm.acquire(2, "r", LockMode.S, breakdown=breakdown)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert breakdown.locking == pytest.approx(2.0)


def test_fifo_no_starvation():
    """A queued X is not starved by a stream of later S requests."""
    env = Environment()
    lm = LockManager(env)
    order = []

    def first_reader():
        yield from lm.acquire(1, "r", LockMode.S)
        yield env.timeout(2)
        lm.release_all(1)

    def writer():
        yield env.timeout(0.5)
        yield from lm.acquire(2, "r", LockMode.X)
        order.append("writer")
        lm.release_all(2)

    def late_reader():
        yield env.timeout(1)
        yield from lm.acquire(3, "r", LockMode.S)
        order.append("late_reader")
        lm.release_all(3)

    env.process(first_reader())
    env.process(writer())
    env.process(late_reader())
    env.run()
    assert order == ["writer", "late_reader"]


def test_reentrant_same_mode_is_noop():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.acquire(1, "r", LockMode.S)
        yield from lm.acquire(1, "r", LockMode.S)

    run(env, work())
    assert lm.mode_held(1, "r") is LockMode.S


def test_upgrade_s_to_x_when_alone():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.acquire(1, "r", LockMode.S)
        yield from lm.acquire(1, "r", LockMode.X)

    run(env, work())
    assert lm.mode_held(1, "r") is LockMode.X


def test_upgrade_waits_for_other_readers():
    env = Environment()
    lm = LockManager(env)
    events = []

    def other_reader():
        yield from lm.acquire(2, "r", LockMode.S)
        yield env.timeout(4)
        lm.release_all(2)

    def upgrader():
        yield from lm.acquire(1, "r", LockMode.S)
        yield env.timeout(1)
        yield from lm.acquire(1, "r", LockMode.X)
        events.append(("upgraded", env.now))

    env.process(other_reader())
    env.process(upgrader())
    env.run()
    assert events == [("upgraded", 4)]


def test_timeout_raises_and_cleans_queue():
    env = Environment()
    lm = LockManager(env, default_timeout=2.0)
    failures = []

    def holder():
        yield from lm.acquire(1, "r", LockMode.X)
        yield env.timeout(100)
        lm.release_all(1)

    def waiter():
        try:
            yield from lm.acquire(2, "r", LockMode.S)
        except LockTimeoutError:
            failures.append(env.now)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert failures == [pytest.approx(2.0)]
    assert lm.timeout_count == 1
    assert lm.queue_length("r") == 0


def test_release_all():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.acquire(1, "a", LockMode.S)
        yield from lm.acquire(1, "b", LockMode.X)

    run(env, work())
    lm.release_all(1)
    assert lm.holders("a") == {}
    assert lm.holders("b") == {}
    lm.release_all(1)  # idempotent


def test_release_unheld_raises():
    env = Environment()
    lm = LockManager(env)
    with pytest.raises(KeyError):
        lm.release(1, "r")


def test_hierarchical_record_lock():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.lock_record(1, "orders", 10, key=5, mode=LockMode.X)

    run(env, work())
    assert lm.mode_held(1, ("table", "orders")) is LockMode.IX
    assert lm.mode_held(1, ("partition", 10)) is LockMode.IX
    assert lm.mode_held(1, ("record", 10, 5)) is LockMode.X


def test_record_lock_mode_validation():
    env = Environment()
    lm = LockManager(env)

    def work():
        yield from lm.lock_record(1, "t", 1, key=1, mode=LockMode.IS)

    with pytest.raises(ValueError):
        run(env, work())


def test_partition_x_blocks_record_readers():
    """The migration pattern: partition-level X vs record-level S."""
    env = Environment()
    lm = LockManager(env)
    log = []

    def mover():
        yield from lm.lock_partition(1, "t", 10, LockMode.X)
        yield env.timeout(5)
        lm.release_all(1)

    def reader():
        yield env.timeout(1)
        yield from lm.lock_record(2, "t", 10, key=3, mode=LockMode.S)
        log.append(env.now)
        lm.release_all(2)

    env.process(mover())
    env.process(reader())
    env.run()
    assert log == [5]


def test_partition_s_drains_writers_but_admits_readers():
    """Physiological migration takes a partition read lock: writers
    must finish, readers keep flowing (paper Sect. 4.3)."""
    env = Environment()
    lm = LockManager(env)
    log = []

    def writer():
        yield from lm.lock_record(1, "t", 10, key=3, mode=LockMode.X)
        yield env.timeout(4)
        lm.release_all(1)
        log.append(("writer-done", env.now))

    def mover():
        yield env.timeout(1)
        yield from lm.lock_partition(2, "t", 10, LockMode.S)
        log.append(("move-lock", env.now))
        lm.release_all(2)

    def reader():
        yield env.timeout(2)
        yield from lm.lock_record(3, "t", 10, key=5, mode=LockMode.S)
        log.append(("reader", env.now))
        lm.release_all(3)

    env.process(writer())
    env.process(mover())
    env.process(reader())
    env.run()
    assert ("reader", 2) in log          # readers not blocked
    assert ("move-lock", 4) in log       # mover waited for the writer
