"""Property tests of the lock manager: mutual exclusion, grant
conservation, and liveness under random schedules."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.txn import LockManager, LockMode, LockTimeoutError
from repro.txn.locks import compatible


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_txns=st.integers(min_value=2, max_value=8),
    n_resources=st.integers(min_value=1, max_value=4),
)
def test_property_mutual_exclusion_and_liveness(seed, n_txns, n_resources):
    rng = random.Random(seed)
    env = Environment()
    lm = LockManager(env, default_timeout=5.0)
    #: resource -> set of (txn, mode) currently inside the "critical
    #: section"; checked for compatibility at every entry.
    inside: dict[str, list[tuple[int, LockMode]]] = {
        f"r{i}": [] for i in range(n_resources)
    }
    violations = []
    completed = [0]

    def txn_proc(txn_id):
        for _ in range(rng.randint(1, 6)):
            resource = f"r{rng.randrange(n_resources)}"
            mode = rng.choice([LockMode.S, LockMode.S, LockMode.X])
            try:
                yield from lm.acquire(txn_id, resource, mode)
            except LockTimeoutError:
                lm.release_all(txn_id)
                yield env.timeout(rng.random() * 0.1)
                continue
            # Entering the critical section: check compatibility with
            # everyone already inside.
            for other_txn, other_mode in inside[resource]:
                if other_txn != txn_id and not compatible(other_mode, mode):
                    violations.append((resource, txn_id, other_txn))
            entry = (txn_id, mode)
            inside[resource].append(entry)
            yield env.timeout(rng.random() * 0.2)
            inside[resource].remove(entry)
            lm.release_all(txn_id)
        completed[0] += 1

    procs = [env.process(txn_proc(i + 1)) for i in range(n_txns)]
    for proc in procs:
        env.run(until=proc)
    assert violations == []
    assert completed[0] == n_txns
    # Everything released: the lock table is empty.
    for i in range(n_resources):
        assert lm.holders(f"r{i}") == {}
        assert lm.queue_length(f"r{i}") == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_hierarchical_locking_no_granule_conflicts(seed):
    """Record-level writers and a partition-level reader (the migration
    pattern) interleave without ever overlapping incompatibly."""
    rng = random.Random(seed)
    env = Environment()
    lm = LockManager(env, default_timeout=10.0)
    partition_locked = [False]
    writers_inside = [0]
    violations = []

    def writer(txn_id):
        for _ in range(3):
            key = rng.randrange(5)
            try:
                yield from lm.lock_record(txn_id, "t", 1, key, LockMode.X)
            except LockTimeoutError:
                lm.release_all(txn_id)
                continue
            if partition_locked[0]:
                violations.append(("writer-during-S", txn_id))
            writers_inside[0] += 1
            yield env.timeout(rng.random() * 0.1)
            writers_inside[0] -= 1
            lm.release_all(txn_id)
            yield env.timeout(rng.random() * 0.05)

    def mover():
        yield env.timeout(rng.random() * 0.2)
        yield from lm.lock_partition(99, "t", 1, LockMode.S)
        if writers_inside[0]:
            violations.append(("S-during-writers", writers_inside[0]))
        partition_locked[0] = True
        yield env.timeout(0.15)
        partition_locked[0] = False
        lm.release_all(99)

    procs = [env.process(writer(i + 1)) for i in range(3)]
    procs.append(env.process(mover()))
    for proc in procs:
        env.run(until=proc)
    assert violations == []
