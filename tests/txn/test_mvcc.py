"""MVCC semantics: snapshot isolation, conflicts, vacuum."""

import pytest

from repro.sim import Environment
from repro.storage import Column, RecordVersion, Schema, Segment
from repro.txn import TransactionManager, WriteConflictError, mvcc
from repro.txn.mvcc import DuplicateKeyError


@pytest.fixture()
def setup():
    env = Environment()
    tm = TransactionManager(env)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    segment = Segment(1, "t", max_pages=32, page_bytes=1024)
    return env, tm, schema, segment


def commit(env, tm, txn):
    env.run(until=env.process(tm.commit(txn)))


def ver(schema, key, value, txn):
    return RecordVersion.make(schema, (key, value), created_by=txn.txn_id)


def test_own_writes_visible(setup):
    env, tm, schema, seg = setup
    txn = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", txn), txn)
    assert mvcc.visible_version(seg, 1, txn).values == (1, "a")


def test_uncommitted_writes_invisible_to_others(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader) is None


def test_committed_writes_visible_to_later_snapshots(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    commit(env, tm, writer)
    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader).values == (1, "a")


def test_snapshot_ignores_later_commits(setup):
    """A reader that began first keeps seeing the old state."""
    env, tm, schema, seg = setup
    writer1 = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "old", writer1), writer1)
    commit(env, tm, writer1)

    reader = tm.begin()  # snapshot taken now
    writer2 = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "new", writer2), writer2)
    commit(env, tm, writer2)

    assert mvcc.visible_version(seg, 1, reader).values == (1, "old")
    late_reader = tm.begin()
    assert mvcc.visible_version(seg, 1, late_reader).values == (1, "new")


def test_update_keeps_old_version_readable(setup):
    """The property the paper relies on during record movement."""
    env, tm, schema, seg = setup
    writer1 = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "old", writer1), writer1)
    commit(env, tm, writer1)

    writer2 = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "new", writer2), writer2)
    # Uncommitted update: other snapshots still read "old".
    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader).values == (1, "old")
    assert seg.version_count == 2  # both versions occupy space


def test_delete_hides_record_after_commit(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    commit(env, tm, writer)

    deleter = tm.begin()
    mvcc.delete(seg, 1, deleter)
    commit(env, tm, deleter)

    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader) is None
    # The dead version still occupies space until vacuum.
    assert seg.version_count == 1


def test_duplicate_insert_rejected(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    commit(env, tm, writer)
    other = tm.begin()
    with pytest.raises(DuplicateKeyError):
        mvcc.insert(seg, ver(schema, 1, "b", other), other)


def test_write_write_conflict_with_inflight_txn(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    commit(env, tm, writer)

    t1 = tm.begin()
    t2 = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "t1", t1), t1)
    with pytest.raises(WriteConflictError):
        mvcc.update(seg, 1, ver(schema, 1, "t2", t2), t2)


def test_first_committer_wins_against_stale_snapshot(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", writer), writer)
    commit(env, tm, writer)

    stale = tm.begin()
    fast = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "fast", fast), fast)
    commit(env, tm, fast)
    with pytest.raises(WriteConflictError):
        mvcc.update(seg, 1, ver(schema, 1, "stale", stale), stale)


def test_update_missing_key(setup):
    env, tm, schema, seg = setup
    txn = tm.begin()
    with pytest.raises(KeyError):
        mvcc.update(seg, 99, ver(schema, 99, "x", txn), txn)
    with pytest.raises(KeyError):
        mvcc.delete(seg, 99, txn)


def test_abort_removes_created_versions(setup):
    env, tm, schema, seg = setup
    txn = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "a", txn), txn)
    tm.abort(txn)
    assert seg.version_count == 0
    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader) is None


def test_abort_unwinds_update(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "keep", writer), writer)
    commit(env, tm, writer)

    txn = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "gone", txn), txn)
    tm.abort(txn)

    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader).values == (1, "keep")
    assert seg.version_count == 1


def test_aborted_txn_cannot_commit(setup):
    env, tm, schema, seg = setup
    txn = tm.begin()
    tm.abort(txn)
    with pytest.raises(Exception):
        commit(env, tm, txn)


def test_vacuum_reclaims_old_versions(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "v1", writer), writer)
    commit(env, tm, writer)
    for value in ("v2", "v3"):
        t = tm.begin()
        mvcc.update(seg, 1, ver(schema, 1, value, t), t)
        commit(env, tm, t)
    assert seg.version_count == 3

    reclaimed = mvcc.vacuum(seg, tm.oldest_active_begin_ts())
    assert reclaimed == 2
    assert seg.version_count == 1
    reader = tm.begin()
    assert mvcc.visible_version(seg, 1, reader).values == (1, "v3")


def test_vacuum_respects_active_snapshots(setup):
    env, tm, schema, seg = setup
    writer = tm.begin()
    mvcc.insert(seg, ver(schema, 1, "v1", writer), writer)
    commit(env, tm, writer)

    old_reader = tm.begin()  # holds the horizon back
    t = tm.begin()
    mvcc.update(seg, 1, ver(schema, 1, "v2", t), t)
    commit(env, tm, t)

    reclaimed = mvcc.vacuum(seg, tm.oldest_active_begin_ts())
    assert reclaimed == 0
    assert mvcc.visible_version(seg, 1, old_reader).values == (1, "v1")


def test_oldest_active_begin_ts_advances(setup):
    env, tm, schema, seg = setup
    t1 = tm.begin()
    horizon_before = tm.oldest_active_begin_ts()
    tm.abort(t1)
    assert tm.oldest_active_begin_ts() > horizon_before
