"""Vacuum safety properties: GC at any horizon never removes a version
some live snapshot can still see, and a delete/vacuum/re-insert cycle
round-trips cleanly."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.storage import Column, RecordVersion, Schema, Segment
from repro.txn import TransactionManager, mvcc

SCHEMA = Schema([Column("id"), Column("v", "str", width=24)], key=("id",))


def fresh():
    env = Environment()
    tm = TransactionManager(env)
    segment = Segment(1, "t", max_pages=64, page_bytes=1024)
    return env, tm, segment


def commit(env, tm, txn):
    env.run(until=env.process(tm.commit(txn)))


def ver(key, value, txn):
    return RecordVersion.make(SCHEMA, (key, value), created_by=txn.txn_id)


def snapshot_view(segment, txn):
    """Every key's visible value under ``txn``'s snapshot."""
    view = {}
    for key, _chain in segment.index_scan():
        version = mvcc.visible_version(segment, key, txn)
        if version is not None:
            view[key] = tuple(version.values)
    return view


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_keys=st.integers(min_value=1, max_value=5),
       n_rounds=st.integers(min_value=1, max_value=12))
def test_property_vacuum_preserves_live_snapshots(seed, n_keys, n_rounds):
    """Run a random mutation workload, park reader transactions on
    arbitrary snapshots along the way, then vacuum at the manager's
    horizon after every round: no parked reader's view may change."""
    rng = random.Random(seed)
    env, tm, segment = fresh()

    # Seed rows.
    boot = tm.begin()
    for k in range(n_keys):
        mvcc.insert(segment, ver(k, "v0", boot), boot)
    commit(env, tm, boot)

    readers = []  # (txn, frozen view at its snapshot)
    for _ in range(n_rounds):
        if rng.random() < 0.6:
            reader = tm.begin()
            readers.append((reader, snapshot_view(segment, reader)))
        writer = tm.begin()
        key = rng.randrange(n_keys)
        try:
            if rng.random() < 0.3 and \
                    mvcc.visible_version(segment, key, writer) is not None:
                mvcc.delete(segment, key, writer)
            elif mvcc.visible_version(segment, key, writer) is not None:
                mvcc.update(segment, key, ver(key, f"r{writer.txn_id}",
                                              writer), writer)
            else:
                mvcc.insert(segment, ver(key, f"i{writer.txn_id}", writer),
                            writer)
        except (mvcc.DuplicateKeyError, KeyError):
            tm.abort(writer)
        else:
            if rng.random() < 0.15:
                tm.abort(writer)
            else:
                commit(env, tm, writer)
        # The property: vacuum at the true horizon, then every parked
        # snapshot still reads exactly what it read before.
        mvcc.vacuum(segment, tm.oldest_active_begin_ts())
        for reader, frozen in readers:
            assert snapshot_view(segment, reader) == frozen, \
                f"vacuum changed the view of snapshot {reader.begin_ts}"
        # Retire a random parked reader now and then.
        if readers and rng.random() < 0.4:
            idx = rng.randrange(len(readers))
            reader, _ = readers.pop(idx)
            commit(env, tm, reader)

    for reader, frozen in readers:
        assert snapshot_view(segment, reader) == frozen


@settings(max_examples=40, deadline=None)
@given(horizon=st.integers(min_value=0, max_value=50))
def test_property_vacuum_at_any_horizon_keeps_undeleted_rows(horizon):
    """However aggressive the horizon, vacuum only ever removes
    delete-marked versions — an undeleted committed row survives."""
    env, tm, segment = fresh()
    t1 = tm.begin()
    mvcc.insert(segment, ver(1, "keep", t1), t1)
    commit(env, tm, t1)
    t2 = tm.begin()
    mvcc.update(segment, 1, ver(1, "keep2", t2), t2)
    commit(env, tm, t2)
    mvcc.vacuum(segment, horizon)
    check = tm.begin()
    version = mvcc.visible_version(segment, 1, check)
    assert version is not None
    assert tuple(version.values) == (1, "keep2")


def test_delete_vacuum_reinsert_round_trip():
    """Regression: a key deleted, vacuumed away, and re-inserted must
    behave like a fresh row — visible with the new value, exactly one
    version in the chain, and no tombstone resurrection."""
    env, tm, segment = fresh()

    t1 = tm.begin()
    mvcc.insert(segment, ver(7, "first", t1), t1)
    commit(env, tm, t1)

    t2 = tm.begin()
    mvcc.delete(segment, 7, t2)
    commit(env, tm, t2)

    # With no active snapshot, the tombstoned version is reclaimable.
    reclaimed = mvcc.vacuum(segment, tm.oldest_active_begin_ts())
    assert reclaimed == 1
    assert segment.versions_for(7) == []

    t3 = tm.begin()
    mvcc.insert(segment, ver(7, "second", t3), t3)
    commit(env, tm, t3)

    t4 = tm.begin()
    version = mvcc.visible_version(segment, 7, t4)
    assert version is not None
    assert tuple(version.values) == (7, "second")
    assert len(segment.versions_for(7)) == 1
    # And a second vacuum is a no-op: nothing dead remains.
    assert mvcc.vacuum(segment, tm.oldest_active_begin_ts()) == 0


def test_vacuum_spares_versions_deleted_at_the_horizon():
    """The GC predicate is strictly-before: a version deleted exactly
    at the horizon timestamp is still visible to a snapshot sitting at
    that timestamp and must survive."""
    env, tm, segment = fresh()
    t1 = tm.begin()
    mvcc.insert(segment, ver(1, "row", t1), t1)
    commit(env, tm, t1)
    t2 = tm.begin()
    mvcc.delete(segment, 1, t2)
    commit(env, tm, t2)
    delete_ts = t2.commit_ts
    assert mvcc.vacuum(segment, delete_ts) == 0
    assert len(segment.versions_for(1)) == 1
    assert mvcc.vacuum(segment, delete_ts + 1) == 1
