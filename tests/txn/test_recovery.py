"""Failure injection: committed work is reconstructable from the WAL.

Simulates the crash contract: the buffer (and thus any dirty page) is
lost, the log survives, and REDO rebuilds the committed state — losers
(uncommitted at crash) leave no trace.
"""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.txn import recovery


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])
    return env, cluster


def run(env, gen):
    return env.run(until=env.process(gen))


def fresh_partition(cluster, table="kv"):
    """A blank replacement partition, as a restarted node would build."""
    worker = cluster.workers[0]
    old = worker.partitions_for_table(table)[0]
    worker.remove_partition(old.partition_id)
    replacement = cluster.catalog.new_partition(table, worker.node_id)
    worker.add_partition(replacement)
    return replacement


def test_committed_writes_survive_crash(rig):
    env, cluster = rig
    worker = cluster.workers[0]

    def work():
        txn = cluster.txns.begin()
        for i in range(20):
            yield from cluster.master.insert("kv", (i, "v%02d" % i), txn)
        yield from cluster.txns.commit(txn)
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 3, (3, "updated"), txn)
        yield from cluster.master.delete("kv", 7, txn)
        yield from cluster.txns.commit(txn)

    run(env, work())

    # CRASH: partition state is lost; only the WAL remains.
    replacement = fresh_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, replacement, "kv",
                                           from_checkpoint=False)
    assert report.redone_inserts == 20
    assert report.redone_updates == 1
    assert report.redone_deletes == 1
    assert report.committed_transactions == 2

    # Rebuilt contents match the committed state.
    keys = {}
    for seg in replacement.segments.values():
        for _p, _s, version in seg.scan_versions():
            keys[version.key] = version.values
    assert keys[3] == (3, "updated")
    assert 7 not in keys
    assert len(keys) == 19  # 20 inserts - 1 delete


def test_loser_transactions_leave_no_trace(rig):
    env, cluster = rig
    worker = cluster.workers[0]

    def work():
        committed = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "keep"), committed)
        yield from cluster.txns.commit(committed)
        loser = cluster.txns.begin()
        yield from cluster.master.insert("kv", (2, "lose"), loser)
        # Crash before the loser commits: its records are in the log
        # tail but have no commit record.

    run(env, work())
    replacement = fresh_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, replacement, "kv",
                                           from_checkpoint=False)
    assert report.losers_discarded == 1
    keys = [v.key for seg in replacement.segments.values()
            for _p, _s, v in seg.scan_versions()]
    assert keys == [1]


def test_checkpoint_bounds_replay(rig):
    """A segment move's checkpoint means earlier records are not
    replayed — they belong to data that moved away."""
    env, cluster = rig
    worker = cluster.workers[0]

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "before"), txn)
        yield from cluster.txns.commit(txn)
        worker.wal.checkpoint(payload=("segment-moved", 99, 1))
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (2, "after"), txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
    replacement = fresh_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, replacement, "kv")
    assert report.start_lsn > 0
    keys = [v.key for seg in replacement.segments.values()
            for _p, _s, v in seg.scan_versions()]
    assert keys == [2]


def test_recovery_after_physiological_move():
    """Post-move crash on the source: recovery from the checkpoint does
    not resurrect moved records (they log on the target now)."""
    from repro.core import PhysiologicalPartitioning

    env = Environment()
    # Small segments so a 50% move leaves the lower keys on the source.
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=256, segment_max_pages=2,
                      page_bytes=1024)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])
    worker = cluster.workers[0]

    def work():
        txn = cluster.txns.begin()
        for i in range(80):
            yield from cluster.master.insert("kv", (i, "x" * 30), txn)
        yield from cluster.txns.commit(txn)
        scheme = PhysiologicalPartitioning()
        yield from scheme.migrate_fraction(
            cluster, "kv", worker, [cluster.worker(1)], 0.5
        )
        # A post-move write on the source's remaining range.
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 0, (0, "post"), txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
    assert any(r.kind == "checkpoint" for r in worker.wal.records)
    replacement = fresh_partition(cluster)
    report = recovery.recover_worker_table(worker.wal, replacement, "kv")
    keys = {v.key for seg in replacement.segments.values()
            for _p, _s, v in seg.scan_versions()}
    # Only post-checkpoint work is replayed; moved keys stay away.
    assert keys == {0}
    assert report.redone_updates == 1


def test_analyze_ignores_pre_lsn_records(rig):
    env, cluster = rig
    worker = cluster.workers[0]

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "x"), txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
    all_records, committed, _losers = recovery.analyze(worker.wal, 0)
    assert len(all_records) == 1
    none_records, _c, _l = recovery.analyze(worker.wal, 10**9)
    assert none_records == []
