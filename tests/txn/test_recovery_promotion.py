"""Replay a shipped log tail into a fresh partition on a DIFFERENT
node — the promotion path failover uses (satellite of the HA work).

The WAL stays on the dead node's disk in the model; what a promotion
replays is the replica's copy of it.  These tests exercise the replay
mechanics directly: same partition id, new owner, gpt repointed, and
loser/aborted transactions leaving no trace even across a checkpoint.
"""

import pytest

from repro import Cluster, Column, Environment, Schema
from repro.txn import recovery


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=3, initially_active=3,
                      buffer_pages_per_node=256, segment_max_pages=16,
                      page_bytes=2048)
    schema = Schema([Column("id"), Column("v", "str", width=32)], key=("id",))
    cluster.master.create_table("kv", schema, owner=cluster.workers[0])
    return env, cluster


def run(env, gen):
    return env.run(until=env.process(gen))


def rows_in(partition):
    return {v.key: v.values for seg in partition.segments.values()
            for _p, _s, v in seg.scan_versions()}


def promote_to(cluster, target, table="kv"):
    """Rebuild the table's partition on ``target`` from the old owner's
    WAL, exactly as FailoverCoordinator._promote does."""
    source = cluster.workers[0]
    old = source.partitions_for_table(table)[0]
    partition = cluster.catalog.rebuild_partition(
        old.partition_id, table, target.node_id
    )
    report = recovery.recover_worker_table(source.wal, partition, table,
                                           from_checkpoint=False)
    target.add_partition(partition)
    for segment in partition.segments.values():
        target.ensure_hosted(segment)
    source.remove_partition(old.partition_id)
    cluster.master.gpt.reassign(table, old.partition_id, target.node_id)
    return partition, report


def test_tail_replays_onto_different_node(rig):
    env, cluster = rig
    target = cluster.workers[1]

    def work():
        txn = cluster.txns.begin()
        for i in range(15):
            yield from cluster.master.insert("kv", (i, "v%02d" % i), txn)
        yield from cluster.txns.commit(txn)
        txn = cluster.txns.begin()
        yield from cluster.master.update("kv", 4, (4, "moved"), txn)
        yield from cluster.master.delete("kv", 9, txn)
        yield from cluster.txns.commit(txn)

    run(env, work())
    partition, report = promote_to(cluster, target)

    assert partition.node_id == target.node_id
    assert report.redone_inserts == 15
    assert report.redone_updates == 1
    assert report.redone_deletes == 1
    contents = rows_in(partition)
    assert contents[4] == (4, "moved")
    assert 9 not in contents and len(contents) == 14

    # The gpt routes reads at the new owner now.
    def read_back():
        txn = cluster.txns.begin()
        row = yield from cluster.master.read("kv", 4, txn)
        assert row == (4, "moved")
        yield from cluster.txns.commit(txn)

    run(env, read_back())


def test_loser_discarded_across_checkpoint(rig):
    """A transaction that straddles a checkpoint but never commits must
    not resurrect — even though its pre-checkpoint records are outside
    a checkpoint-bounded replay and its post-checkpoint ones inside."""
    env, cluster = rig
    source = cluster.workers[0]
    target = cluster.workers[2]

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "keep"), txn)
        yield from cluster.txns.commit(txn)
        loser = cluster.txns.begin()
        yield from cluster.master.insert("kv", (100, "astride"), loser)
        source.wal.checkpoint(payload=("segment-moved", 99, 1))
        yield from cluster.master.insert("kv", (101, "astride"), loser)
        # Crash: the loser never commits.

    run(env, work())

    # Full-log replay (promotion path): both loser records discarded.
    partition, report = promote_to(cluster, target)
    assert report.losers_discarded == 1
    assert set(rows_in(partition)) == {1}

    # Checkpoint-bounded replay (restart path) discards the tail half.
    shell = cluster.catalog.new_partition("kv", target.node_id)
    report = recovery.recover_worker_table(source.wal, shell, "kv")
    assert report.start_lsn > 0
    assert 101 not in rows_in(shell)


def test_abort_record_supersedes_commit(rig):
    """A crash-abort can land after a commit record is already on disk
    (the injector aborts a txn suspended inside commit).  Recovery must
    treat the abort as authoritative and not replay the writes."""
    env, cluster = rig
    source = cluster.workers[0]
    target = cluster.workers[1]

    def work():
        txn = cluster.txns.begin()
        yield from cluster.master.insert("kv", (1, "keep"), txn)
        yield from cluster.txns.commit(txn)
        doomed = cluster.txns.begin()
        yield from cluster.master.insert("kv", (2, "zombie"), doomed)
        # Force the log tail as commit would, then abort: the WAL now
        # holds insert + commit + abort for the same txn id.
        source.wal.append(doomed.txn_id, "commit", None, 64)
        cluster.txns.abort(doomed)

    run(env, work())
    assert [r.kind for r in source.wal.records if r.kind == "abort"]
    partition, _report = promote_to(cluster, target)
    assert set(rows_in(partition)) == {1}
