"""Property test: WAL recycling never outruns its horizons.

``CheckpointManager.recycling_horizon`` is the safety valve of the
segmented WAL: whatever interleaving of appends, replication lag, open
moves, and checkpoints occurs, ``truncate_before(horizon)`` must never
drop a record that

  * REDO still needs (LSN >= the checkpoint's ``redo_lsn``),
  * a lagging replica has not acknowledged (LSN >= acked horizon), or
  * a still-open move's recovery trail pins (LSN >= oldest PREPARE).

Hypothesis drives randomized op sequences against a real
:class:`LogManager` and a pure-Python mirror of the surviving LSNs; the
stubs stand in for the replication manager and move journal so the
horizon arithmetic — not the sim plumbing — is what gets exercised.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.hardware import Disk, SSD_SPEC
from repro.sim import Environment
from repro.txn import LogManager
from repro.txn.checkpoint import CheckpointManager


class StubReplication:
    """Per-node acked-LSN watermark with a settable lag."""

    def __init__(self):
        self.pin = None

    def acked_horizon(self, node_id):
        return self.pin


class StubJournal:
    """Open-move PREPARE pins, FIFO like the real journal's entries."""

    def __init__(self, wal):
        self.wal = wal
        self.open_pins = []

    def oldest_open_move_lsn(self):
        return min(self.open_pins) if self.open_pins else None


class StubWorker:
    def __init__(self, wal):
        self.node_id = 1
        self.wal = wal


class StubCluster:
    def __init__(self, env):
        self.env = env


OP = st.one_of(
    st.tuples(st.just("append"), st.integers(1, 4)),
    st.tuples(st.just("commit"), st.integers(1, 4)),
    st.tuples(st.just("ack"), st.just(0)),           # replica caught up
    st.tuples(st.just("lag"), st.integers(0, 12)),   # replica N behind tail
    st.tuples(st.just("open_move"), st.just(0)),
    st.tuples(st.just("close_move"), st.just(0)),
    st.tuples(st.just("checkpoint"), st.just(0)),
)


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(OP, min_size=1, max_size=100),
       segment_records=st.integers(2, 8))
def test_recycling_never_crosses_any_horizon(ops, segment_records):
    env = Environment()
    disk = Disk(env, SSD_SPEC, name="logdisk")
    log = LogManager(env, disk, segment_records=segment_records)
    worker = StubWorker(log)
    replication = StubReplication()
    journal = StubJournal(log)
    manager = CheckpointManager(StubCluster(env), replication)

    surviving = []          # mirror of the LSNs the log must still hold
    active = set()          # txns with logged, uncommitted writes

    for op, arg in ops:
        if op == "append":
            surviving.append(log.append(arg, "insert", payload=arg))
            active.add(arg)
        elif op == "commit":
            if arg in active:
                surviving.append(log.append(arg, "commit"))
                active.discard(arg)
        elif op == "ack":
            replication.pin = None
        elif op == "lag":
            replication.pin = max(log._next_lsn - arg, 1)
        elif op == "open_move":
            lsn = log.append(0, "segment_move_prepare")
            surviving.append(lsn)
            journal.open_pins.append(lsn)
        elif op == "close_move":
            if journal.open_pins:
                journal.open_pins.pop(0)
                surviving.append(log.append(0, "segment_move_commit"))
        elif op == "checkpoint":
            lsn = log.append(0, "checkpoint")
            surviving.append(lsn)
            oldest = log.oldest_active_redo_lsn()
            redo = lsn if oldest is None else min(oldest, lsn)
            horizon = manager.recycling_horizon(worker, redo, journal)

            # The horizon respects every pin individually.
            assert horizon <= redo
            if replication.pin is not None:
                assert horizon <= replication.pin
            if journal.open_pins:
                assert horizon <= min(journal.open_pins)

            log.truncate_before(horizon)
            surviving = [l for l in surviving if l >= horizon]

        # The log holds exactly the records the model says must survive:
        # recycling dropped nothing at or above any horizon, and exactly
        # everything below the last one.
        assert [r.lsn for r in log.records] == surviving
        # Open transactions' first writes are never recycled away.
        oldest = log.oldest_active_redo_lsn()
        if oldest is not None:
            assert oldest >= log.records[0].lsn or oldest in surviving
