"""WAL and transaction-manager tests."""

import pytest

from repro.hardware import Disk, HDD_SPEC, Network, NetworkPort, SSD_SPEC
from repro.metrics import CostBreakdown
from repro.sim import Environment
from repro.txn import LogManager, LogShippingSink, TransactionManager
from repro.txn.wal import LOG_BLOCK_BYTES


def make_log():
    env = Environment()
    disk = Disk(env, SSD_SPEC, name="logdisk")
    return env, disk, LogManager(env, disk)


def run(env, gen):
    return env.run(until=env.process(gen))


class TestLogManager:
    def test_append_assigns_increasing_lsns(self):
        _env, _disk, log = make_log()
        lsns = [log.append(1, "insert") for _ in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert len(log.records) == 5

    def test_flush_writes_to_disk(self):
        env, disk, log = make_log()
        lsn = log.append(1, "insert")

        def work():
            yield from log.flush(lsn)

        run(env, work())
        assert disk.writes == 1
        assert disk.bytes_written >= LOG_BLOCK_BYTES
        assert log.flushed_lsn == lsn

    def test_flush_is_idempotent(self):
        env, disk, log = make_log()
        lsn = log.append(1, "insert")

        def work():
            yield from log.flush(lsn)
            yield from log.flush(lsn)

        run(env, work())
        assert disk.writes == 1

    def test_group_commit_batches_flushes(self):
        """Many concurrent committers produce far fewer physical writes."""
        env, disk, log = make_log()

        def committer(txn_id):
            lsn = log.append(txn_id, "commit")
            yield from log.flush(lsn)

        for txn_id in range(20):
            env.process(committer(txn_id))
        env.run()
        assert log.flushed_lsn == 20
        assert disk.writes < 20

    def test_logging_time_recorded(self):
        env, _disk, log = make_log()
        breakdown = CostBreakdown()
        lsn = log.append(1, "commit")

        def work():
            yield from log.flush(lsn, breakdown=breakdown)

        run(env, work())
        assert breakdown.logging > 0

    def test_log_shipping_redirects_writes(self):
        env = Environment()
        local_disk = Disk(env, HDD_SPEC, name="local")
        helper_disk = Disk(env, HDD_SPEC, name="helper")
        network = Network(env)
        log = LogManager(env, local_disk)
        sink = LogShippingSink(
            network, NetworkPort(env, "src"), NetworkPort(env, "dst"), helper_disk
        )
        log.ship_to(sink)
        assert log.is_shipping
        lsn = log.append(1, "commit")

        def work():
            yield from log.flush(lsn)

        run(env, work())
        assert local_disk.writes == 0
        assert helper_disk.writes == 1
        log.ship_locally()
        assert not log.is_shipping

    def test_checkpoint_and_truncate(self):
        _env, _disk, log = make_log()
        log.append(1, "insert")
        log.append(1, "commit")
        ckpt = log.checkpoint()
        log.append(2, "insert")
        cut = log.truncate_before(ckpt)
        assert cut == 2
        assert [r.kind for r in log.records] == ["checkpoint", "insert"]

    def test_committed_ops_since(self):
        _env, _disk, log = make_log()
        log.append(1, "insert", payload="a")
        log.append(2, "insert", payload="b")
        log.append(1, "commit")
        # txn 2 never commits -> its ops are not redone.
        ops = log.committed_ops_since(0)
        assert [r.payload for r in ops] == ["a"]


class TestTransactionManager:
    def test_begin_assigns_snapshot(self):
        env = Environment()
        tm = TransactionManager(env)
        t1 = tm.begin()
        t2 = tm.begin()
        assert t2.txn_id > t1.txn_id
        assert t2.begin_ts >= t1.begin_ts
        assert tm.active_count == 2

    def test_commit_flushes_dirty_logs(self):
        env = Environment()
        disk = Disk(env, SSD_SPEC)
        log = LogManager(env, disk)
        tm = TransactionManager(env)
        txn = tm.begin()
        log.append(txn.txn_id, "insert")
        txn.note_log(log)

        def work():
            yield from tm.commit(txn)

        run(env, work())
        assert disk.writes == 1
        assert tm.committed_count == 1
        assert tm.active_count == 0
        assert any(r.kind == "commit" for r in log.records)

    def test_readonly_commit_no_io(self):
        env = Environment()
        tm = TransactionManager(env)
        txn = tm.begin()

        def work():
            yield from tm.commit(txn)

        run(env, work())
        assert txn.is_read_only

    def test_abort_releases_locks(self):
        env = Environment()
        tm = TransactionManager(env)
        from repro.txn import LockMode

        txn = tm.begin()

        def work():
            yield from tm.locks.acquire(txn.txn_id, "r", LockMode.X)

        run(env, work())
        tm.abort(txn)
        assert tm.locks.holders("r") == {}
        assert tm.aborted_count == 1

    def test_system_transaction_flag(self):
        env = Environment()
        tm = TransactionManager(env)
        txn = tm.begin(is_system=True)
        assert txn.is_system
