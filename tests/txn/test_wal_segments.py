"""Segmented WAL: seal/recycle/drop lifecycle and LSN-exact recycling.

The log is a deque of fixed-size segments; ``truncate_before`` must
drop whole sealed segments in O(1) while keeping the historical
LSN-exact contract (the returned cut count and the surviving records
are identical to the old list-slicing implementation).
"""

import pytest

from repro.hardware import Disk, SSD_SPEC
from repro.sim import Environment
from repro.txn import LogManager


def make_log(segment_records=4):
    env = Environment()
    disk = Disk(env, SSD_SPEC, name="logdisk")
    return env, disk, LogManager(env, disk, segment_records=segment_records)


class TestSegmentLifecycle:
    def test_full_segments_seal_and_count(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(10):
            log.append(1, "insert", payload=i)
        stats = log.retention_stats()
        assert stats["segments"] == 3          # 4 + 4 + 2
        assert stats["segments_sealed"] == 2
        assert log.live_records == 10
        assert [r.payload for r in log.records] == list(range(10))

    def test_truncate_drops_whole_segments(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(12):
            log.append(1, "insert", payload=i)
        cut = log.truncate_before(9)           # segments [1-4] [5-8] whole
        assert cut == 8
        assert log.live_records == 4
        assert [r.lsn for r in log.records] == [9, 10, 11, 12]
        stats = log.retention_stats()
        assert stats["segments_dropped"] == 2
        assert stats["records_truncated"] == 8

    def test_truncate_is_lsn_exact_within_a_segment(self):
        """A horizon inside a segment trims the record prefix exactly —
        not rounded down to a segment boundary."""
        _env, _disk, log = make_log(segment_records=8)
        for i in range(8):
            log.append(1, "insert", payload=i)
        cut = log.truncate_before(4)
        assert cut == 3
        assert [r.lsn for r in log.records] == [4, 5, 6, 7, 8]
        # Second exact cut in the same boundary segment.
        assert log.truncate_before(6) == 2
        assert [r.lsn for r in log.records] == [6, 7, 8]

    def test_dropped_segment_shells_are_recycled(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(9):
            log.append(1, "insert", payload=i)
        log.truncate_before(9)
        before = log.retention_stats()
        assert before["segments_dropped"] == 2
        for i in range(8):                     # fills two fresh segments
            log.append(1, "insert", payload=100 + i)
        after = log.retention_stats()
        assert after["segments_recycled"] >= 1
        # LSNs stay contiguous across recycling.
        assert [r.lsn for r in log.records] == list(range(9, 18))

    def test_truncate_never_drops_the_tail_segment(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(6):
            log.append(1, "insert", payload=i)
        cut = log.truncate_before(10_000)      # horizon past the tail
        assert cut == 6
        assert log.live_records == 0
        # Appends continue with the next LSN as if nothing happened.
        assert log.append(2, "insert") == 7
        assert [r.lsn for r in log.records] == [7]


class TestIterFrom:
    def test_iter_from_skips_sealed_segments(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(12):
            log.append(1, "insert", payload=i)
        assert [r.lsn for r in log.iter_from(9)] == [10, 11, 12]
        assert [r.lsn for r in log.iter_from(0)] == list(range(1, 13))
        assert list(log.iter_from(12)) == []

    def test_iter_from_binary_searches_boundary_segment(self):
        _env, _disk, log = make_log(segment_records=8)
        for i in range(8):
            log.append(1, "insert", payload=i)
        assert [r.lsn for r in log.iter_from(5)] == [6, 7, 8]

    def test_iter_from_after_truncation(self):
        _env, _disk, log = make_log(segment_records=4)
        for i in range(12):
            log.append(1, "insert", payload=i)
        log.truncate_before(7)
        assert [r.lsn for r in log.iter_from(8)] == [9, 10, 11, 12]


class TestRecordsView:
    """The ``records`` attribute stayed sequence-shaped for existing
    callers: len, iteration, indexing, negative indexing, slices."""

    def test_indexing_spans_segments(self):
        _env, _disk, log = make_log(segment_records=3)
        for i in range(8):
            log.append(1, "insert", payload=i)
        assert log.records[0].payload == 0
        assert log.records[4].payload == 4
        assert log.records[-1].payload == 7
        assert [r.payload for r in log.records[2:5]] == [2, 3, 4]
        with pytest.raises(IndexError):
            log.records[8]

    def test_reversed_iteration(self):
        _env, _disk, log = make_log(segment_records=3)
        for i in range(7):
            log.append(1, "insert", payload=i)
        assert [r.payload for r in reversed(log.records)] == \
            list(reversed(range(7)))

    def test_tail_matches_last_index(self):
        _env, _disk, log = make_log(segment_records=3)
        for i in range(5):
            log.append(1, "insert", payload=i)
        assert log.tail is log.records[-1]


class TestActiveTxnTracking:
    def test_oldest_active_redo_lsn(self):
        _env, _disk, log = make_log()
        assert log.oldest_active_redo_lsn() is None
        log.append(7, "insert")                # lsn 1
        log.append(8, "insert")                # lsn 2
        assert log.oldest_active_redo_lsn() == 1
        log.append(7, "commit")
        assert log.oldest_active_redo_lsn() == 2
        log.append(8, "abort")
        assert log.oldest_active_redo_lsn() is None
