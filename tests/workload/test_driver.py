"""Workload-driver integration tests (mini end-to-end runs)."""

import pytest

from repro import Cluster, Environment
from repro.workload import (
    TpccConfig,
    TpccContext,
    WorkloadDriver,
    load_tpcc,
    start_vacuum_daemon,
)


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(
        env, node_count=3, initially_active=2,
        buffer_pages_per_node=2048, segment_max_pages=16, page_bytes=2048,
    )
    config = TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=50, orders_per_district=10, order_lines_per_order=3,
    )
    load_tpcc(cluster, config, owners=[cluster.workers[0], cluster.workers[1]])
    ctx = TpccContext(cluster, config)
    return env, cluster, ctx


def test_driver_validation(rig):
    env, cluster, ctx = rig
    with pytest.raises(ValueError):
        WorkloadDriver(cluster, ctx, clients=0, client_interval=1.0)
    with pytest.raises(ValueError):
        from repro.workload.client import OltpClient

        OltpClient(0, ctx, None, interval=0)


def test_driver_completes_queries(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5)
    env.run(until=env.process(driver.run(20.0)))
    assert driver.total_completed > 20
    assert driver.total_failed == 0
    assert len(driver.power) > 0


def test_client_interval_caps_throughput(rig):
    """The paper's closed-loop model: clients cap offered load."""
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=2, client_interval=1.0)
    env.run(until=env.process(driver.run(30.0)))
    # 2 clients x 1 query/s x 30 s = 60 max.
    assert driver.total_completed <= 62


def test_qps_and_response_series(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5)
    env.run(until=env.process(driver.run(20.0)))
    qps = driver.qps_series(0, 20, 5.0)
    assert len(qps) == 4
    assert sum(rate for _t, rate in qps) > 0
    resp = driver.response_series(0, 20, 5.0)
    values = [v for _t, v in resp if v is not None]
    assert values and all(v > 0 for v in values)


def test_energy_per_query_series(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5)
    env.run(until=env.process(driver.run(20.0)))
    energy = driver.energy_per_query_series(0, 20, 5.0)
    values = [v for _t, v in energy if v is not None]
    assert values
    # Two wimpy nodes + switch at a few qps: O(1..100) joules/query.
    assert all(0.1 < v < 1000 for v in values)


def test_mix_distribution_roughly_respected(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=8, client_interval=0.2)
    env.run(until=env.process(driver.run(30.0)))
    by_kind = driver.results_by_kind
    assert by_kind.get("new_order", 0) > by_kind.get("stock_level", 0)
    assert by_kind.get("payment", 0) > by_kind.get("delivery", 0)


def test_breakdown_collected(rig):
    env, cluster, ctx = rig
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5)
    env.run(until=env.process(driver.run(20.0)))
    mean = driver.mean_breakdown()
    assert mean.total >= 0
    assert mean.disk_io >= 0


def test_vacuum_daemon_reclaims_versions(rig):
    env, cluster, ctx = rig
    start_vacuum_daemon(cluster, interval=5.0)
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.3)
    env.run(until=env.process(driver.run(30.0)))

    def settle():
        yield env.timeout(10.0)

    env.run(until=env.process(settle()))
    # After the daemon runs with no active txns, few dead versions remain.
    dead = 0
    for worker in cluster.active_workers():
        for partition in worker.partitions.values():
            for segment in partition.segments.values():
                for _p, _s, v in segment.scan_versions():
                    if v.deleted_ts is not None:
                        dead += 1
    assert dead == 0


def test_workload_under_locking_mode(rig):
    env, cluster, ctx = rig
    ctx.cc = "locking"
    driver = WorkloadDriver(cluster, ctx, clients=4, client_interval=0.5)
    env.run(until=env.process(driver.run(20.0)))
    assert driver.total_completed > 10
