"""Retry/backoff accounting: retried commits are counted separately
from first-try commits, failures record the retries they burned."""

import pytest

from repro import Cluster, Environment
from repro.metrics.breakdown import CostBreakdown
from repro.metrics.report import render_retry_summary
from repro.txn.manager import TransactionAborted
from repro.workload import client as client_mod
from repro.workload.client import (
    BACKOFF_BASE_SECONDS, BACKOFF_CAP_SECONDS, MAX_RETRIES, OltpClient,
    backoff_delay,
)
from repro.workload.driver import WorkloadDriver
from repro.workload.tpcc_schema import TpccConfig
from repro.workload.tpcc_txns import TpccContext


def test_backoff_is_exponential_and_capped():
    assert backoff_delay(0) == BACKOFF_BASE_SECONDS
    assert backoff_delay(1) == 2 * BACKOFF_BASE_SECONDS
    assert backoff_delay(2) == 4 * BACKOFF_BASE_SECONDS
    assert backoff_delay(20) == BACKOFF_CAP_SECONDS
    delays = [backoff_delay(a) for a in range(MAX_RETRIES)]
    assert delays == sorted(delays)


def make_driver(retry_budget=None):
    env = Environment()
    cluster = Cluster(env, node_count=2, initially_active=2,
                      buffer_pages_per_node=64)
    ctx = TpccContext(cluster, TpccConfig(warehouses=1))
    return env, cluster, WorkloadDriver(cluster, ctx, clients=1,
                                        client_interval=1.0,
                                        retry_budget=retry_budget)


def test_driver_separates_first_try_from_retried():
    env, _cluster, driver = make_driver()
    bd = CostBreakdown()
    driver.note_completion("new_order", 0.0, 0.1, bd, None, attempts=1)
    driver.note_completion("new_order", 0.0, 0.4, bd, None, attempts=3)
    driver.note_failure("payment", 0.0, 1.0, attempts=MAX_RETRIES)
    summary = driver.retry_summary()
    assert summary["first_try_completions"] == 1
    assert summary["retried_completions"] == 1
    # 2 retries from the retried commit + 7 from the exhausted failure.
    assert summary["retries_total"] == 2 + (MAX_RETRIES - 1)
    assert summary["exhausted_failures"] == 1
    assert summary["retried_fraction"] == 0.5


def test_render_retry_summary_table():
    env, _cluster, driver = make_driver()
    driver.note_completion("new_order", 0.0, 0.1, CostBreakdown(), None,
                           attempts=2)
    table = render_retry_summary(driver.retry_summary())
    assert "retried commits" in table
    assert "first-try commits" in table
    assert "retries spent" in table


class _Flaky:
    """Aborts the first ``failures`` calls, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, ctx, txn, breakdown):
        self.calls += 1
        if self.calls <= self.failures:
            ctx.cluster.txns.abort(txn)
            raise TransactionAborted("injected conflict")
        return {"kind": "flaky"}
        yield  # pragma: no cover - makes this a generator function


def run_flaky_client(failures, retry_budget=None):
    env, cluster, driver = make_driver(retry_budget)
    flaky = _Flaky(failures)
    client = driver.clients[0]
    client.mix = [("flaky", 1.0)]
    saved = dict(client_mod.TRANSACTIONS)
    client_mod.TRANSACTIONS["flaky"] = flaky
    try:
        env.run(until=env.process(client.run(until=0.5)))
    finally:
        client_mod.TRANSACTIONS.clear()
        client_mod.TRANSACTIONS.update(saved)
    return env, driver, client


def test_client_counts_retries_and_backs_off():
    env, driver, client = run_flaky_client(failures=2)
    assert client.queries_done == 1
    assert client.retries == 2
    assert driver.retried_completions == 1
    assert driver.first_try_completions == 0
    assert driver.retries_total == 2
    assert driver.conflicts == 2
    # Two backoffs elapsed: 10ms + 20ms (plus rpc/plan sim time).
    assert env.now >= backoff_delay(0) + backoff_delay(1)


def test_client_exhausts_retries_cleanly():
    env, driver, client = run_flaky_client(failures=MAX_RETRIES + 5)
    assert client.queries_failed == 1
    assert client.queries_done == 0
    assert driver.total_failed == 1
    assert driver.retries_total == MAX_RETRIES - 1
    summary = driver.retry_summary()
    assert summary["exhausted_failures"] == 1
    assert summary["retried_fraction"] == 0.0
    # The default budget (30 s) is far above what a handful of 10 ms
    # backoffs can burn: nothing was abandoned on this path.
    assert client.queries_abandoned == 0
    assert summary["abandoned_requests"] == 0


def test_client_abandons_when_retry_budget_burned():
    """A tiny total-retry-time budget turns the same conflict storm
    into an *abandoned* query (gave up early) instead of an exhausted
    one — counted separately from MAX_RETRIES exhaustion."""
    env, driver, client = run_flaky_client(failures=MAX_RETRIES + 5,
                                           retry_budget=0.005)
    assert client.queries_abandoned == 1
    assert client.queries_failed == 0
    assert client.queries_done == 0
    assert driver.total_abandoned == 1
    assert driver.total_failed == 0
    summary = driver.retry_summary()
    assert summary["abandoned_requests"] == 1
    assert summary["exhausted_failures"] == 0
    table = render_retry_summary(summary)
    assert "abandoned (gave up)" in table


def test_retry_budget_validation():
    env, cluster, driver = make_driver()
    ctx = driver.ctx
    with pytest.raises(ValueError):
        OltpClient(0, ctx, driver, interval=1.0, retry_budget=0.0)
