"""TPC-C schema / generator / loader tests."""

import pytest

from repro import Cluster, Environment
from repro.workload import TPCC_TABLES, TpccConfig, load_tpcc, table_schema
from repro.workload.tpcc_gen import TpccGenerator


def tiny_config(**overrides):
    defaults = dict(
        warehouses=2, districts_per_warehouse=2, customers_per_district=5,
        items=20, orders_per_district=5, order_lines_per_order=3,
    )
    defaults.update(overrides)
    return TpccConfig(**defaults)


def make_cluster(env, active=2):
    return Cluster(
        env, node_count=4, initially_active=active,
        buffer_pages_per_node=1024, segment_max_pages=16, page_bytes=2048,
    )


class TestSchema:
    def test_all_nine_tables_defined(self):
        assert len(TPCC_TABLES) == 9
        expected = {
            "warehouse", "district", "customer", "history", "new_order",
            "orders", "order_line", "item", "stock",
        }
        assert set(TPCC_TABLES) == expected

    def test_keys_lead_with_warehouse(self):
        for name, schema in TPCC_TABLES.items():
            if name == "item":
                assert schema.key == ("i_id",)
            else:
                assert schema.key[0].endswith("w_id")

    def test_table_schema_lookup(self):
        assert table_schema("customer").key == ("c_w_id", "c_d_id", "c_id")
        with pytest.raises(KeyError):
            table_schema("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TpccConfig(warehouses=0)
        with pytest.raises(ValueError):
            TpccConfig(items=0)


class TestGenerator:
    def test_row_counts_match_config(self):
        config = tiny_config()
        gen = TpccGenerator(config)
        assert len(list(gen.warehouse_rows())) == 2
        assert len(list(gen.district_rows())) == 4
        assert len(list(gen.customer_rows())) == 20
        assert len(list(gen.item_rows())) == 20
        assert len(list(gen.stock_rows())) == 40
        assert len(list(gen.orders_rows())) == 20
        assert len(list(gen.order_line_rows())) == 60

    def test_deterministic_given_seed(self):
        rows1 = list(TpccGenerator(tiny_config()).customer_rows())
        rows2 = list(TpccGenerator(tiny_config()).customer_rows())
        assert rows1 == rows2

    def test_rows_validate_against_schema(self):
        config = tiny_config()
        gen = TpccGenerator(config)
        for table, schema in TPCC_TABLES.items():
            for values in gen.rows_for(table):
                schema.validate(values)

    def test_nurand_in_bounds(self):
        gen = TpccGenerator(tiny_config())
        for _ in range(200):
            assert 1 <= gen.nurand(1023, 1, 30, 259) <= 30


class TestFastLoad:
    def test_load_creates_all_tables(self):
        env = Environment()
        cluster = make_cluster(env)
        partitions = load_tpcc(cluster, tiny_config(),
                               owners=[cluster.workers[0], cluster.workers[1]])
        assert set(partitions) == set(TPCC_TABLES)
        # Warehouse-partitioned tables have one partition per owner.
        assert len(partitions["customer"]) == 2
        assert len(partitions["item"]) == 1

    def test_load_distributes_by_warehouse(self):
        env = Environment()
        cluster = make_cluster(env)
        config = tiny_config()
        load_tpcc(cluster, config,
                  owners=[cluster.workers[0], cluster.workers[1]])
        # Warehouse 1 on node 0, warehouse 2 on node 1.
        assert cluster.master.gpt.locate("customer", (1, 1, 1)).node_id == 0
        assert cluster.master.gpt.locate("customer", (2, 1, 1)).node_id == 1

    def test_loaded_rows_are_readable(self):
        env = Environment()
        cluster = make_cluster(env)
        config = tiny_config()
        load_tpcc(cluster, config,
                  owners=[cluster.workers[0], cluster.workers[1]])
        results = {}

        def check():
            txn = cluster.txns.begin()
            results["wh"] = yield from cluster.master.read("warehouse", 1, txn)
            results["cust"] = yield from cluster.master.read(
                "customer", (2, 1, 3), txn
            )
            results["district"] = yield from cluster.master.read(
                "district", (1, 2), txn
            )
            results["stock"] = yield from cluster.master.read(
                "stock", (2, 7), txn
            )
            yield from cluster.txns.commit(txn)

        env.run(until=env.process(check()))
        assert results["wh"][0] == 1
        assert results["cust"][:3] == (2, 1, 3)
        assert results["district"][9] == config.orders_per_district + 1
        assert results["stock"][:2] == (2, 7)

    def test_record_counts(self):
        env = Environment()
        cluster = make_cluster(env)
        config = tiny_config()
        partitions = load_tpcc(
            cluster, config, owners=[cluster.workers[0], cluster.workers[1]]
        )
        total_customers = sum(p.record_count for p in partitions["customer"])
        assert total_customers == 20
        total_lines = sum(p.record_count for p in partitions["order_line"])
        assert total_lines == 60

    def test_slow_load_matches_fast_load_contents(self):
        config = tiny_config(warehouses=1, items=10, customers_per_district=3,
                             orders_per_district=3)
        env_fast = Environment()
        cluster_fast = make_cluster(env_fast, active=1)
        load_tpcc(cluster_fast, config, owners=[cluster_fast.workers[0]],
                  tables=["warehouse", "district", "customer"])

        env_slow = Environment()
        cluster_slow = make_cluster(env_slow, active=1)
        gen = load_tpcc(cluster_slow, config, owners=[cluster_slow.workers[0]],
                        tables=["warehouse", "district", "customer"],
                        fast=False)
        env_slow.run(until=env_slow.process(gen))

        def read_all_rows(env, cluster):
            out = {}

            def go():
                txn = cluster.txns.begin()
                rows = yield from cluster.master.read_range(
                    "customer", None, None, txn
                )
                out["rows"] = rows
                yield from cluster.txns.commit(txn)

            env.run(until=env.process(go()))
            return out["rows"]

        fast_rows = read_all_rows(env_fast, cluster_fast)
        slow_rows = read_all_rows(env_slow, cluster_slow)
        assert fast_rows == slow_rows
        assert len(fast_rows) == 6  # 2 districts x 3 customers
