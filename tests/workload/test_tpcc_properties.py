"""Property tests of the TPC-C generator and context distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import TpccConfig
from repro.workload.tpcc_gen import TpccGenerator, warehouse_ranges
from repro.workload.tpcc_schema import TPCC_TABLES, tables_for


small_configs = st.builds(
    TpccConfig,
    warehouses=st.integers(min_value=1, max_value=4),
    districts_per_warehouse=st.integers(min_value=1, max_value=4),
    customers_per_district=st.integers(min_value=1, max_value=8),
    items=st.integers(min_value=5, max_value=30),
    orders_per_district=st.integers(min_value=1, max_value=6),
    order_lines_per_order=st.integers(min_value=1, max_value=4),
)


@settings(max_examples=20, deadline=None)
@given(config=small_configs)
def test_property_cardinalities_follow_config(config):
    gen = TpccGenerator(config)
    w = config.warehouses
    d = config.districts_per_warehouse
    c = config.customers_per_district
    o = config.orders_per_district
    assert len(list(gen.warehouse_rows())) == w
    assert len(list(gen.district_rows())) == w * d
    assert len(list(gen.customer_rows())) == w * d * c
    assert len(list(gen.history_rows())) == w * d * c
    assert len(list(gen.item_rows())) == config.items
    assert len(list(gen.stock_rows())) == w * config.items
    assert len(list(gen.orders_rows())) == w * d * o
    assert len(list(gen.order_line_rows())) == (
        w * d * o * config.order_lines_per_order
    )


@settings(max_examples=20, deadline=None)
@given(config=small_configs)
def test_property_primary_keys_unique(config):
    gen = TpccGenerator(config)
    schemas = tables_for(config)
    for table in TPCC_TABLES:
        schema = schemas[table]
        keys = [schema.key_of(row) for row in gen.rows_for(table)]
        assert len(keys) == len(set(keys)), f"duplicate keys in {table}"


@settings(max_examples=20, deadline=None)
@given(config=small_configs, pad=st.sampled_from([0, 128, 4096]))
def test_property_pad_blob_changes_size_not_keys(config, pad):
    import dataclasses

    padded = dataclasses.replace(config, pad_blob_bytes=pad)
    schemas = tables_for(padded)
    gen = TpccGenerator(padded)
    row = next(iter(gen.customer_rows()))
    schema = schemas["customer"]
    schema.validate(row)
    size = schema.sizeof(row)
    if pad:
        assert size > pad  # the pad dominates
    # Key extraction is unaffected by the pad column.
    assert schema.key_of(row) == (row[0], row[1], row[2])


class _FakeOwner:
    def __init__(self, node_id):
        self.node_id = node_id


@settings(max_examples=30, deadline=None)
@given(
    warehouses=st.integers(min_value=1, max_value=20),
    owners=st.integers(min_value=1, max_value=5),
)
def test_property_warehouse_ranges_partition_the_space(warehouses, owners):
    config = TpccConfig(warehouses=warehouses)
    ranges = warehouse_ranges(
        config, [_FakeOwner(i) for i in range(owners)], single_column=False
    )
    # Every warehouse-prefixed key falls in exactly one range.
    for w in range(1, warehouses + 1):
        hits = [r for r, _o in ranges if r.contains((w, 1, 1))]
        assert len(hits) == 1
    # Ranges are mutually non-overlapping.
    for i, (r1, _o1) in enumerate(ranges):
        for r2, _o2 in ranges[i + 1:]:
            assert not r1.overlaps(r2)


def test_nurand_distribution_is_skewed():
    """NURand should visit a hot subset far more than uniform would."""
    from collections import Counter

    gen = TpccGenerator(TpccConfig(customers_per_district=100))
    counts = Counter(gen.nurand(1023, 1, 100, 259) for _ in range(20_000))
    top_decile = sum(n for _v, n in counts.most_common(10))
    assert top_decile > 20_000 * 0.15  # uniform would give ~10%
