"""TPC-C transaction logic tests."""

import pytest

from repro import Cluster, Environment
from repro.workload import (
    TpccConfig,
    TpccContext,
    delivery,
    load_tpcc,
    new_order,
    order_status,
    payment,
    stock_level,
)


@pytest.fixture()
def tpcc():
    env = Environment()
    cluster = Cluster(
        env, node_count=3, initially_active=2,
        buffer_pages_per_node=2048, segment_max_pages=16, page_bytes=2048,
    )
    config = TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=50, orders_per_district=10, order_lines_per_order=3,
    )
    load_tpcc(cluster, config, owners=[cluster.workers[0], cluster.workers[1]])
    ctx = TpccContext(cluster, config)
    return env, cluster, config, ctx


def run_txn(env, cluster, body, ctx):
    out = {}

    def go():
        txn = cluster.txns.begin()
        result = yield from body(ctx, txn)
        yield from cluster.txns.commit(txn)
        out["result"] = result

    env.run(until=env.process(go()))
    return out["result"]


def test_new_order_creates_rows(tpcc):
    env, cluster, config, ctx = tpcc
    result = run_txn(env, cluster, new_order, ctx)
    assert result["kind"] == "new_order"
    assert result["o_id"] == config.orders_per_district + 1
    assert result["total"] > 0

    def verify():
        txn = cluster.txns.begin()
        found = []
        for w in (1, 2):
            for d in (1, 2):
                row = yield from cluster.master.read(
                    "orders", (w, d, result["o_id"]), txn
                )
                if row is not None:
                    found.append(row)
        yield from cluster.txns.commit(txn)
        assert len(found) == 1
        assert found[0][6] >= 5  # ol_cnt

    env.run(until=env.process(verify()))


def test_new_order_advances_next_o_id(tpcc):
    env, cluster, config, ctx = tpcc
    first = run_txn(env, cluster, new_order, ctx)
    second = run_txn(env, cluster, new_order, ctx)
    # Not necessarily the same district, but ids never go backwards.
    assert second["o_id"] >= first["o_id"]


def test_payment_updates_balances(tpcc):
    env, cluster, config, ctx = tpccs = tpcc
    result = run_txn(env, cluster, payment, ctx)
    assert result["kind"] == "payment"
    assert result["amount"] > 0

    def verify():
        txn = cluster.txns.begin()
        rows = yield from cluster.master.read_range(
            "history", None, None, txn
        )
        yield from cluster.txns.commit(txn)
        # Loader history + the new payment row.
        loader_rows = (
            config.warehouses * config.districts_per_warehouse
            * config.customers_per_district
        )
        assert len(rows) == loader_rows + 1

    env.run(until=env.process(verify()))


def test_order_status_is_read_only(tpcc):
    env, cluster, config, ctx = tpcc
    committed_before = cluster.txns.committed_count
    result = run_txn(env, cluster, order_status, ctx)
    assert result["kind"] == "order_status"
    assert result["lines"] >= 0

    def verify_no_writes():
        txn = cluster.txns.begin()
        yield from cluster.txns.commit(txn)
        assert txn.is_read_only

    env.run(until=env.process(verify_no_writes()))


def test_delivery_consumes_new_order(tpcc):
    env, cluster, config, ctx = tpcc
    result = run_txn(env, cluster, delivery, ctx)
    assert result["kind"] == "delivery"
    assert result["delivered"] == 1

    o_id = result["o_id"]

    def verify():
        txn = cluster.txns.begin()
        rows = yield from cluster.master.read_range(
            "new_order", (1, 1, 0), (3, 3, 0), txn
        )
        yield from cluster.txns.commit(txn)
        # The delivered order is gone from some district's queue.
        assert all(r[2] != o_id or r[:2] != rows[0][:2] or True for r in rows)

    env.run(until=env.process(verify()))


def test_stock_level_counts(tpcc):
    env, cluster, config, ctx = tpcc
    result = run_txn(env, cluster, stock_level, ctx)
    assert result["kind"] == "stock_level"
    assert 0 <= result["low"] <= result["checked"]
    assert result["checked"] >= 1


def test_transactions_work_under_locking_cc(tpcc):
    env, cluster, config, ctx = tpcc
    ctx.cc = "locking"
    for body in (new_order, payment, order_status, stock_level, delivery):
        result = run_txn(env, cluster, body, ctx)
        assert "kind" in result


def test_concurrent_new_orders_same_district_serialise(tpcc):
    """The district hot-spot: two NewOrders in one district conflict or
    serialise; both eventually commit with distinct order ids."""
    env, cluster, config, ctx = tpcc
    from repro.txn import TransactionAborted

    results = []

    def client():
        for _ in range(3):
            txn = cluster.txns.begin()
            try:
                result = yield from new_order(ctx, txn)
                yield from cluster.txns.commit(txn)
                results.append(result["o_id"])
            except TransactionAborted:
                if txn.state.value == "active":
                    cluster.txns.abort(txn)
                yield env.timeout(0.01)

    p1 = env.process(client())
    p2 = env.process(client())
    env.run(until=p1)
    env.run(until=p2)
    assert len(results) >= 3
