"""The background vacuum daemon: stoppable, and boundable by the run's
end time so audited simulations drain completely."""

import pytest

from repro import Cluster, Environment
from repro.storage import Column, Schema
from repro.workload import start_vacuum_daemon


SCHEMA = Schema([Column("id"), Column("v", "str", width=16)], key=("id",))


@pytest.fixture()
def rig():
    env = Environment()
    cluster = Cluster(env, node_count=1, initially_active=1,
                      segment_max_pages=16, page_bytes=2048)
    cluster.master.create_table("kv", SCHEMA, owner=cluster.workers[0])
    return env, cluster


def churn(cluster, n=10):
    def work():
        for i in range(n):
            txn = cluster.txns.begin()
            yield from cluster.master.insert("kv", (i, "a"), txn)
            yield from cluster.txns.commit(txn)
            txn = cluster.txns.begin()
            yield from cluster.master.update("kv", i, (i, "b"), txn)
            yield from cluster.txns.commit(txn)
    return work


def test_daemon_bounded_by_until_terminates(rig):
    """With ``until`` set, the daemon's last sweep lands at or before
    the bound and its process finishes — the event queue drains."""
    env, cluster = rig
    handle = start_vacuum_daemon(cluster, interval=5.0, until=22.0)
    env.run(until=env.process(churn(cluster)()))
    env.run()  # drain: would never return if the daemon ran forever
    assert handle.process.is_alive is False
    assert env.now <= 22.0
    assert handle.sweeps == 5  # t = 5, 10, 15, 20, and finally 22
    assert handle.reclaimed == 10  # the superseded pre-update versions


def test_daemon_stop_exits_at_next_wakeup(rig):
    env, cluster = rig
    handle = start_vacuum_daemon(cluster, interval=5.0)
    assert not handle.stopped

    def stopper():
        yield env.timeout(12.0)
        handle.stop()

    env.run(until=env.process(stopper()))
    assert handle.stopped
    env.run()  # the daemon notices the flag at t=15 and exits
    assert handle.process.is_alive is False
    assert handle.sweeps == 2  # t = 5, 10; the t=15 wakeup only exits


def test_daemon_unbounded_keeps_running(rig):
    """Without ``until`` (the historical default), the daemon stays
    scheduled for as long as the simulation runs."""
    env, cluster = rig
    handle = start_vacuum_daemon(cluster, interval=5.0)
    env.run(until=51.0)
    assert handle.sweeps == 10
    assert handle.process.is_alive is True


def test_daemon_until_before_first_interval_sweeps_once(rig):
    """A bound shorter than the interval clamps the first sleep: one
    sweep exactly at the bound, then exit."""
    env, cluster = rig
    handle = start_vacuum_daemon(cluster, interval=30.0, until=2.0)
    env.run()
    assert env.now == 2.0
    assert handle.sweeps == 1
    assert handle.process.is_alive is False
